//! Gini coefficient (paper Eq. 1).
//!
//! For producer block counts `NB_{A_i}`:
//!
//! ```text
//! G = Σ_{i,j} |NB_i − NB_j| / (2 · |A| · Σ_i NB_i)
//! ```
//!
//! Computed in O(n log n) via the sorted-rank identity
//! `Σ_{i,j} |x_i − x_j| = 2 · Σ_i (2i − n − 1) · x_(i)` for ascending
//! `x_(i)` with 1-based rank `i`, which is exact and avoids the O(n²)
//! double loop.
//!
//! Interpretation (paper §II-B1): G near 0 means mining power is evenly
//! spread — *more* decentralized; G near 1 means concentration.

use super::{debug_check_sorted, positive_weights, sorted_positive};

/// Gini coefficient of a weight slice. Returns 0.0 for fewer than two
/// positive weights (a single producer is "perfectly equal with itself";
/// the paper never evaluates this degenerate case).
///
/// ```
/// use blockdec_core::metrics::gini;
/// assert_eq!(gini(&[5.0, 5.0, 5.0]), 0.0);          // perfect equality
/// assert_eq!(gini(&[1.0, 3.0]), 0.25);              // Eq. 1 by hand
/// assert!(gini(&[100.0, 1.0, 1.0, 1.0]) > 0.7);     // concentration
/// ```
pub fn gini(weights: &[f64]) -> f64 {
    gini_sorted(&sorted_positive(weights))
}

/// [`gini`] kernel over a slice already in sorted-scratch-contract form
/// (finite, strictly positive, ascending by `total_cmp`); skips the
/// per-call filter + sort so a shared scratch buffer can be reused
/// across metrics.
pub fn gini_sorted(sorted: &[f64]) -> f64 {
    debug_check_sorted(sorted);
    let n = sorted.len();
    if n < 2 {
        return 0.0;
    }
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let n_f = n as f64;
    // Σ_i (2i − n − 1) x_(i), 1-based i over ascending x.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i0, &x)| (2.0 * (i0 as f64 + 1.0) - n_f - 1.0) * x)
        .sum();
    (weighted / (n_f * total)).clamp(0.0, 1.0)
}

/// The Lorenz curve underlying the Gini coefficient: cumulative
/// population share → cumulative block share, as `(x, y)` points from
/// `(0, 0)` to `(1, 1)` over producers sorted ascending by weight.
///
/// The Gini coefficient equals twice the area between this curve and the
/// `y = x` diagonal — useful for plotting *why* a window's Gini is what
/// it is (e.g. the paper's §II-C3 pie-chart discussion). Returns just the
/// endpoints for fewer than one positive weight.
pub fn lorenz_curve(weights: &[f64]) -> Vec<(f64, f64)> {
    let mut w: Vec<f64> = positive_weights(weights).collect();
    w.sort_unstable_by(f64::total_cmp);
    let total: f64 = w.iter().sum();
    let n = w.len();
    let mut out = Vec::with_capacity(n + 1);
    out.push((0.0, 0.0));
    if n == 0 || total <= 0.0 {
        out.push((1.0, 1.0));
        return out;
    }
    let mut cum = 0.0;
    for (i, &x) in w.iter().enumerate() {
        cum += x;
        out.push(((i + 1) as f64 / n as f64, cum / total));
    }
    // Guard the final point against f64 residue.
    if let Some(last) = out.last_mut() {
        *last = (1.0, 1.0);
    }
    out
}

/// Reference O(n²) implementation of Eq. 1, used by tests and the
/// correctness benches to validate [`gini`].
pub fn gini_pairwise_reference(weights: &[f64]) -> f64 {
    let w: Vec<f64> = positive_weights(weights).collect();
    let n = w.len();
    if n < 2 {
        return 0.0;
    }
    let total: f64 = w.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut diff_sum = 0.0;
    for &a in &w {
        for &b in &w {
            diff_sum += (a - b).abs();
        }
    }
    diff_sum / (2.0 * n as f64 * total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn perfectly_equal_is_zero() {
        assert_close(gini(&[5.0, 5.0, 5.0, 5.0]), 0.0);
        assert_close(gini(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[7.0]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn maximal_concentration_approaches_one() {
        // One producer holds (almost) everything; with n producers the max
        // Gini is (n-1)/n. Zero weights are ignored, so the competitors
        // hold a near-zero weight instead.
        let mut w = vec![1e-9; 100];
        w[0] = 1000.0;
        let g = gini(&w);
        assert!(g > 0.98, "gini {g}");
        assert!(g <= 1.0);
    }

    #[test]
    fn known_small_cases() {
        // {1, 3}: Σ|xi−xj| = 4; G = 4 / (2·2·4) = 0.25.
        assert_close(gini(&[1.0, 3.0]), 0.25);
        // {1, 1, 2}: pairwise sum = 4; G = 4 / (2·3·4) = 1/6.
        assert_close(gini(&[1.0, 1.0, 2.0]), 1.0 / 6.0);
        // {0 ignored, so {2,2,4} scales the same as {1,1,2}}.
        assert_close(gini(&[2.0, 2.0, 4.0]), 1.0 / 6.0);
    }

    #[test]
    fn matches_pairwise_reference() {
        let cases: Vec<Vec<f64>> = vec![
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
            vec![10.0, 1.0, 1.0, 1.0],
            vec![3.5, 3.5, 1.0, 0.5, 9.25],
            (1..=50).map(|i| (i * i) as f64).collect(),
        ];
        for w in cases {
            assert_close(gini(&w), gini_pairwise_reference(&w));
        }
    }

    #[test]
    fn scale_invariant() {
        let w = [1.0, 4.0, 2.0, 8.0];
        let scaled: Vec<f64> = w.iter().map(|x| x * 1234.5).collect();
        assert_close(gini(&w), gini(&scaled));
    }

    #[test]
    fn permutation_invariant() {
        let a = [5.0, 1.0, 3.0, 2.0];
        let b = [1.0, 2.0, 3.0, 5.0];
        assert_close(gini(&a), gini(&b));
    }

    #[test]
    fn zeros_and_negatives_are_ignored() {
        assert_close(gini(&[1.0, 3.0]), gini(&[0.0, 1.0, -2.0, 3.0, 0.0]));
    }

    #[test]
    fn lorenz_curve_endpoints_and_monotonicity() {
        let curve = lorenz_curve(&[1.0, 5.0, 2.0, 2.0]);
        assert_eq!(curve.first(), Some(&(0.0, 0.0)));
        assert_eq!(curve.last(), Some(&(1.0, 1.0)));
        assert_eq!(curve.len(), 5);
        for pair in curve.windows(2) {
            assert!(pair[1].0 > pair[0].0);
            assert!(pair[1].1 >= pair[0].1);
        }
        // Lorenz lies on or below the diagonal.
        for &(x, y) in &curve {
            assert!(y <= x + 1e-12, "({x}, {y}) above diagonal");
        }
    }

    #[test]
    fn lorenz_area_recovers_gini() {
        // Gini = 1 − 2 · ∫ L(x) dx (trapezoid over the curve points).
        let w = [1.0, 2.0, 3.0, 4.0, 10.0];
        let curve = lorenz_curve(&w);
        let mut area = 0.0;
        for pair in curve.windows(2) {
            let ((x0, y0), (x1, y1)) = (pair[0], pair[1]);
            area += (x1 - x0) * (y0 + y1) / 2.0;
        }
        // With trapezoids through the discrete Lorenz points, the
        // identity for Eq. 1's Gini is exactly G = 1 − 2·area.
        let g = 1.0 - 2.0 * area;
        assert!((g - gini(&w)).abs() < 1e-9, "{g} vs {}", gini(&w));
    }

    #[test]
    fn lorenz_degenerate_inputs() {
        assert_eq!(lorenz_curve(&[]), vec![(0.0, 0.0), (1.0, 1.0)]);
        let one = lorenz_curve(&[7.0]);
        assert_eq!(one, vec![(0.0, 0.0), (1.0, 1.0)]);
    }

    #[test]
    fn perfect_equality_lorenz_is_diagonal() {
        for (x, y) in lorenz_curve(&[3.0; 10]) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn adding_small_producers_raises_gini() {
        // The paper's §II-C3 observation: longer windows pull in many
        // one-block miners, raising the Gini even when top shares are
        // unchanged.
        let top_heavy = [100.0, 80.0, 60.0, 40.0];
        let mut with_tail = top_heavy.to_vec();
        with_tail.extend(std::iter::repeat_n(1.0, 50));
        assert!(gini(&with_tail) > gini(&top_heavy));
    }
}
