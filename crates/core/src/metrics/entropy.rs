//! Shannon entropy (paper Eqs. 2–3).
//!
//! With `p_i = b_i / Σ b_i` the share of blocks mined by producer `i`:
//!
//! ```text
//! E = − Σ_i p_i · log2(p_i)
//! ```
//!
//! Interpretation (paper §II-B2): higher entropy means the distribution
//! of mining power is more random/disordered — *more* decentralized.
//! `E` ranges from 0 (one producer) to `log2(n)` (n equal producers).

use super::{debug_check_sorted, sorted_positive};

/// Shannon entropy in bits of the normalized weight distribution.
/// Empty/degenerate input yields 0.0.
///
/// ```
/// use blockdec_core::metrics::shannon_entropy;
/// assert_eq!(shannon_entropy(&[1.0; 8]), 3.0);      // 8 equal miners
/// assert_eq!(shannon_entropy(&[42.0]), 0.0);        // monopoly
/// assert_eq!(shannon_entropy(&[2.0, 1.0, 1.0]), 1.5);
/// ```
pub fn shannon_entropy(weights: &[f64]) -> f64 {
    shannon_entropy_sorted(&sorted_positive(weights))
}

/// [`shannon_entropy`] kernel over a slice already in
/// sorted-scratch-contract form (finite, strictly positive, ascending by
/// `total_cmp`). The summation runs in ascending order, which is also
/// what makes the public wrapper permutation-deterministic.
pub fn shannon_entropy_sorted(sorted: &[f64]) -> f64 {
    debug_check_sorted(sorted);
    if sorted.is_empty() {
        return 0.0;
    }
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // E = log2(T) − Σ w·log2(w) / T  — one pass, no per-element division.
    let sum_wlogw: f64 = sorted.iter().map(|&x| x * x.log2()).sum();
    let e = total.log2() - sum_wlogw / total;
    e.max(0.0)
}

/// Entropy normalized by its maximum `log2(n)`: 0..=1, comparable across
/// windows with different producer populations. Returns 0.0 when fewer
/// than two producers hold weight.
pub fn normalized_shannon_entropy(weights: &[f64]) -> f64 {
    normalized_shannon_entropy_sorted(&sorted_positive(weights))
}

/// [`normalized_shannon_entropy`] kernel over a slice already in
/// sorted-scratch-contract form.
pub fn normalized_shannon_entropy_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n < 2 {
        return 0.0;
    }
    (shannon_entropy_sorted(sorted) / (n as f64).log2()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn uniform_distribution_maximizes() {
        // n equal producers → log2(n) bits.
        assert_close(shannon_entropy(&[1.0; 2]), 1.0);
        assert_close(shannon_entropy(&[1.0; 8]), 3.0);
        assert_close(shannon_entropy(&[5.0; 8]), 3.0);
    }

    #[test]
    fn single_producer_is_zero() {
        assert_close(shannon_entropy(&[42.0]), 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy(&[0.0, 0.0]), 0.0);
        assert_eq!(normalized_shannon_entropy(&[]), 0.0);
        assert_eq!(normalized_shannon_entropy(&[3.0]), 0.0);
    }

    #[test]
    fn known_case() {
        // p = (1/2, 1/4, 1/4): E = 1.5 bits.
        assert_close(shannon_entropy(&[2.0, 1.0, 1.0]), 1.5);
    }

    #[test]
    fn scale_invariant() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let scaled: Vec<f64> = w.iter().map(|x| x * 777.0).collect();
        assert_close(shannon_entropy(&w), shannon_entropy(&scaled));
    }

    #[test]
    fn bounded_by_log2_n() {
        let w = [9.0, 3.0, 1.0, 1.0, 0.5];
        let e = shannon_entropy(&w);
        assert!(e > 0.0);
        assert!(e <= (5f64).log2() + 1e-12);
    }

    #[test]
    fn normalized_is_one_for_uniform() {
        assert_close(normalized_shannon_entropy(&[3.0; 7]), 1.0);
        let skewed = normalized_shannon_entropy(&[100.0, 1.0, 1.0]);
        assert!(skewed > 0.0 && skewed < 1.0);
    }

    #[test]
    fn concentration_lowers_entropy() {
        let spread = shannon_entropy(&[1.0; 10]);
        let concentrated = shannon_entropy(&[91.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        assert!(concentrated < spread);
    }

    #[test]
    fn zeros_are_ignored_not_nan() {
        // 0·log(0) must be treated as 0, not NaN.
        let e = shannon_entropy(&[0.0, 1.0, 1.0]);
        assert!(e.is_finite());
        assert_close(e, 1.0);
    }
}
