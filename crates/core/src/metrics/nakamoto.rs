//! Nakamoto coefficient (paper Eq. 4).
//!
//! ```text
//! N = min{ k ∈ [1..K] : Σ_{i=1..k} p_(i) ≥ 0.51 }
//! ```
//!
//! where `p_(i)` are producer shares sorted descending: the minimum number
//! of entities that would have to collude to control the chain.
//! The paper (following Srinivasan's original definition applied to the
//! 51%-attack threshold) uses **0.51** rather than 0.5, and we default to
//! that; [`nakamoto_with_threshold`] exposes the knob for the 0.33
//! selfish-mining variant discussed in the introduction.

use super::{debug_check_sorted, sorted_positive};

/// The paper's collusion threshold (51%).
pub const NAKAMOTO_THRESHOLD: f64 = 0.51;

/// The selfish-mining threshold (33%) from Eyal & Sirer, discussed in
/// the paper's introduction as the weaker-attacker bound.
pub const SELFISH_MINING_THRESHOLD: f64 = 0.33;

/// Nakamoto coefficient at the standard 51% threshold. Returns 0 for an
/// empty distribution.
///
/// ```
/// use blockdec_core::metrics::nakamoto;
/// // 2019-style Ethereum shares: the top 2 hold 49%, so 3 must collude.
/// let shares = [0.27, 0.22, 0.12, 0.09, 0.06, 0.05, 0.05, 0.05, 0.04, 0.03, 0.02];
/// assert_eq!(nakamoto(&shares), 3);
/// assert_eq!(nakamoto(&[52.0, 48.0]), 1);
/// ```
pub fn nakamoto(weights: &[f64]) -> usize {
    nakamoto_with_threshold(weights, NAKAMOTO_THRESHOLD)
}

/// Nakamoto coefficient at an arbitrary share threshold in (0, 1].
pub fn nakamoto_with_threshold(weights: &[f64], threshold: f64) -> usize {
    nakamoto_with_threshold_sorted(&sorted_positive(weights), threshold)
}

/// [`nakamoto`] kernel over a slice already in sorted-scratch-contract
/// form (ascending): walks producers from the large end.
pub fn nakamoto_sorted(sorted: &[f64]) -> usize {
    nakamoto_with_threshold_sorted(sorted, NAKAMOTO_THRESHOLD)
}

/// [`nakamoto_with_threshold`] kernel over a slice already in
/// sorted-scratch-contract form (ascending).
pub fn nakamoto_with_threshold_sorted(sorted: &[f64], threshold: f64) -> usize {
    assert!(
        threshold > 0.0 && threshold <= 1.0,
        "threshold must be in (0, 1], got {threshold}"
    );
    debug_check_sorted(sorted);
    if sorted.is_empty() {
        return 0;
    }
    let total: f64 = sorted.iter().sum();
    let target = threshold * total;
    let mut cum = 0.0;
    // Largest producers first: the ascending slice walked from the end.
    for (i, x) in sorted.iter().rev().enumerate() {
        cum += x;
        // `>=` with a tiny relative epsilon: f64 summation must not push a
        // producer holding exactly 51% to a coefficient of 2.
        if cum >= target - total * 1e-12 {
            return i + 1;
        }
    }
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_producer_is_one() {
        assert_eq!(nakamoto(&[10.0]), 1);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(nakamoto(&[]), 0);
        assert_eq!(nakamoto(&[0.0, 0.0]), 0);
    }

    #[test]
    fn dominant_majority_is_one() {
        assert_eq!(nakamoto(&[52.0, 24.0, 24.0]), 1);
    }

    #[test]
    fn exactly_51_percent_is_one() {
        assert_eq!(nakamoto(&[51.0, 49.0]), 1);
    }

    #[test]
    fn just_under_51_needs_two() {
        assert_eq!(nakamoto(&[50.9, 49.1]), 2);
    }

    #[test]
    fn uniform_needs_just_over_half() {
        // 10 equal producers: 6 are needed for 60% ≥ 51%.
        assert_eq!(nakamoto(&[1.0; 10]), 6);
        // 100 equal producers: 51 needed.
        assert_eq!(nakamoto(&[1.0; 100]), 51);
    }

    #[test]
    fn paper_style_pool_table() {
        // 2019-like Bitcoin shares: top-4 = 53% → coefficient 4.
        let shares = [
            0.17, 0.13, 0.12, 0.11, 0.09, 0.07, 0.07, 0.06, 0.06, 0.06, 0.06,
        ];
        assert_eq!(nakamoto(&shares), 4);
        // 2019-like Ethereum shares: top-3 = 60% → coefficient 3.
        let shares = [0.27, 0.22, 0.11, 0.08, 0.05, 0.09, 0.09, 0.09];
        assert_eq!(nakamoto(&shares), 3);
    }

    #[test]
    fn order_does_not_matter() {
        assert_eq!(nakamoto(&[1.0, 9.0, 2.0]), nakamoto(&[9.0, 2.0, 1.0]));
    }

    #[test]
    fn custom_thresholds() {
        let w = [40.0, 30.0, 20.0, 10.0];
        // 33% selfish-mining bar: the largest producer alone passes.
        assert_eq!(nakamoto_with_threshold(&w, 0.33), 1);
        // Full control requires everyone.
        assert_eq!(nakamoto_with_threshold(&w, 1.0), 4);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_panics() {
        nakamoto_with_threshold(&[1.0], 0.0);
    }

    #[test]
    fn concentration_lowers_coefficient() {
        let spread = nakamoto(&[1.0; 20]);
        let concentrated = nakamoto(&[50.0, 30.0, 1.0, 1.0, 1.0]);
        assert!(concentrated < spread);
    }

    #[test]
    fn scale_invariant() {
        let w = [5.0, 3.0, 2.0, 1.0];
        let scaled: Vec<f64> = w.iter().map(|x| x * 1e6).collect();
        assert_eq!(nakamoto(&w), nakamoto(&scaled));
    }
}
