//! Top-k producer share (extension metric).
//!
//! The fraction of all blocks in a window produced by the `k` largest
//! producers — the quantity behind the paper's Fig. 7 pie charts and the
//! most direct "who controls the chain" number.

use super::{debug_check_sorted, positive_weights, sorted_positive};

/// Combined share of the `k` heaviest producers, in 0..=1. Returns 0.0
/// for an empty distribution or `k == 0`; returns 1.0 when `k` covers all
/// producers.
pub fn top_k_share(weights: &[f64], k: usize) -> f64 {
    top_k_share_sorted(&sorted_positive(weights), k)
}

/// [`top_k_share`] kernel over a slice already in sorted-scratch-contract
/// form (ascending): the `k` heaviest producers are the slice's tail.
pub fn top_k_share_sorted(sorted: &[f64], k: usize) -> f64 {
    debug_check_sorted(sorted);
    if k == 0 || sorted.is_empty() {
        return 0.0;
    }
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    if k >= sorted.len() {
        return 1.0;
    }
    // Largest-first summation, matching the historical descending walk.
    let top: f64 = sorted[sorted.len() - k..].iter().rev().sum();
    (top / total).clamp(0.0, 1.0)
}

/// The `k` largest weights themselves, descending — used to build the
/// Fig. 7-style share breakdowns.
pub fn top_k_weights(weights: &[f64], k: usize) -> Vec<f64> {
    let mut w: Vec<f64> = positive_weights(weights).collect();
    w.sort_unstable_by(|a, b| b.total_cmp(a));
    w.truncate(k);
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn basic_shares() {
        let w = [50.0, 30.0, 15.0, 5.0];
        assert_close(top_k_share(&w, 1), 0.5);
        assert_close(top_k_share(&w, 2), 0.8);
        assert_close(top_k_share(&w, 4), 1.0);
        assert_close(top_k_share(&w, 10), 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(top_k_share(&[], 3), 0.0);
        assert_eq!(top_k_share(&[1.0, 2.0], 0), 0.0);
        assert_eq!(top_k_share(&[0.0, 0.0], 1), 0.0);
    }

    #[test]
    fn order_does_not_matter() {
        assert_close(
            top_k_share(&[5.0, 30.0, 50.0, 15.0], 2),
            top_k_share(&[50.0, 30.0, 15.0, 5.0], 2),
        );
    }

    #[test]
    fn monotone_in_k() {
        let w = [9.0, 7.0, 5.0, 3.0, 1.0];
        let mut prev = 0.0;
        for k in 1..=5 {
            let s = top_k_share(&w, k);
            assert!(s >= prev);
            prev = s;
        }
        assert_close(prev, 1.0);
    }

    #[test]
    fn top_k_weights_sorted_desc() {
        let w = [3.0, 9.0, 1.0, 7.0];
        assert_eq!(top_k_weights(&w, 3), vec![9.0, 7.0, 3.0]);
        assert_eq!(top_k_weights(&w, 10), vec![9.0, 7.0, 3.0, 1.0]);
    }

    #[test]
    fn ties_do_not_break_selection() {
        let w = [2.0, 2.0, 2.0, 2.0];
        assert_close(top_k_share(&w, 2), 0.5);
    }
}
