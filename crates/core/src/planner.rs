//! The shared-window matrix planner.
//!
//! The paper's headline artifact is a *matrix* — 3 metrics × 3
//! granularities × 2 window families per chain — and every configuration
//! in a column of that matrix re-derives the same intermediate state: the
//! window boundaries, the per-window [`ProducerDistribution`], and the
//! sorted weight vector the metric kernels consume. [`MatrixPlan`]
//! deduplicates all of it:
//!
//! 1. **Group by window spec.** Configurations are grouped by their
//!    [`WindowSpec`] (`Eq + Hash`), and duplicate `(metric, window)`
//!    pairs collapse to one evaluation. Each unique spec's window stream
//!    is materialized once — the fixed-calendar bucketing, the sliding
//!    add/remove slide, and the time-window permutation sort happen once
//!    per *spec*, not once per *config*.
//! 2. **One sorted scratch buffer per window.** For each window the
//!    planner fills a reusable scratch `Vec<f64>` via
//!    [`ProducerDistribution::sorted_weights_into`] (the
//!    sorted-scratch contract of [`crate::metrics`]) and evaluates every
//!    requested metric with [`MetricKind::compute_sorted`] — the weight
//!    vector is allocated and sorted once, however many metrics read it.
//! 3. **Chunked data parallelism.** Parallelism lives *within* a window
//!    spec, not across configs: emitted window indices are partitioned
//!    into contiguous chunks across `std::thread::scope` workers, each
//!    rebuilding its chunk's leading distribution and then sliding. A
//!    single-config ETH-scale sliding run saturates every core.
//!
//! # Exactness
//!
//! Because every public metric function is itself a sort-then-delegate
//! wrapper over the same `*_sorted` kernels, planner output is
//! bit-identical to per-config [`MeasurementEngine::run`] output for the
//! paper's unit-credit attribution (all arithmetic is exact small-integer
//! f64). Under *fractional* credit weights the chunk-leading rebuild and
//! the time-window slide may differ from a continuous slide by f64
//! residue on the order of 1e-12 — the engine's own `ZERO_EPS` guard
//! band — so fractional-attribution comparisons should use an epsilon.

use crate::distribution::ProducerDistribution;
use crate::engine::{timestamp_order_columns, MeasurementEngine, WindowSpec};
use crate::metrics::MetricKind;
use crate::series::{MeasurementPoint, MeasurementSeries};
use crate::windows::fixed::fixed_calendar_windows_columns;
use crate::windows::sliding::SlidingWindowSpec;
use crate::windows::sliding_time::{time_windows_columns, TimeWindowSpec};
use blockdec_chain::{AttributedBlock, BlockColumns, ColumnsSlice, Granularity, Timestamp};
use std::collections::HashMap;
use std::ops::Range;

/// Below this many windows per worker, extra threads cost more in spawn
/// and leading-rebuild overhead than they recover.
const MIN_CHUNK_WINDOWS: usize = 16;

/// One unique window spec and every metric requested over it, in
/// first-appearance order.
struct SpecGroup {
    window: WindowSpec,
    metrics: Vec<MetricKind>,
}

/// An executable measurement plan: the deduplicated form of a config
/// matrix. Build with [`MatrixPlan::new`], execute with
/// [`MatrixPlan::run`]. [`crate::engine::run_matrix`] is the one-call
/// convenience wrapper.
pub struct MatrixPlan {
    groups: Vec<SpecGroup>,
    /// For each input config: (group index, metric slot in that group).
    slots: Vec<(usize, usize)>,
}

/// Everything the planner computes per emitted window: the point
/// metadata plus one value per metric of the owning group, all read from
/// a single sorted scratch fill.
struct WindowRow {
    index: i64,
    start_height: u64,
    end_height: u64,
    start_time: Timestamp,
    end_time: Timestamp,
    blocks: u64,
    producers: u64,
    values: Vec<f64>,
}

impl MatrixPlan {
    /// Plan a config matrix: group configurations by window spec and
    /// collapse duplicate `(metric, window)` pairs.
    pub fn new(configs: &[MeasurementEngine]) -> MatrixPlan {
        let mut groups: Vec<SpecGroup> = Vec::new();
        let mut by_spec: HashMap<WindowSpec, usize> = HashMap::new();
        let mut slots = Vec::with_capacity(configs.len());
        for cfg in configs {
            let gi = *by_spec.entry(cfg.window()).or_insert_with(|| {
                groups.push(SpecGroup {
                    window: cfg.window(),
                    metrics: Vec::new(),
                });
                groups.len() - 1
            });
            let metrics = &mut groups[gi].metrics;
            let slot = metrics
                .iter()
                .position(|&m| m == cfg.metric())
                .unwrap_or_else(|| {
                    metrics.push(cfg.metric());
                    metrics.len() - 1
                });
            slots.push((gi, slot));
        }
        MatrixPlan { groups, slots }
    }

    /// Number of input configurations the plan covers.
    pub fn configs(&self) -> usize {
        self.slots.len()
    }

    /// Number of unique window specs — the streams actually materialized.
    pub fn window_specs(&self) -> usize {
        self.groups.len()
    }

    /// Configurations that reuse a window stream another configuration
    /// already pays for: `configs() - window_specs()`.
    pub fn dedup_hits(&self) -> usize {
        self.slots.len() - self.groups.len()
    }

    /// Execute the plan over a height-ordered block stream.
    ///
    /// Thin compatibility wrapper: converts to [`BlockColumns`] and
    /// delegates to [`MatrixPlan::run_columns`], the canonical path.
    pub fn run(&self, blocks: &[AttributedBlock]) -> Vec<MeasurementSeries> {
        let cols = BlockColumns::from_blocks(blocks);
        self.run_columns(cols.as_slice())
    }

    /// Execute the plan over a height-ordered columnar block stream.
    /// Results come back in input-configuration order. Every window
    /// family and the chunked workers iterate the flat columns directly.
    pub fn run_columns(&self, cols: ColumnsSlice<'_>) -> Vec<MeasurementSeries> {
        let _t = blockdec_obs::span_timed!(
            "stage.measure_matrix",
            configs = self.configs(),
            specs = self.window_specs(),
            blocks = cols.len(),
        );
        blockdec_obs::counter("planner.window_specs").add(self.window_specs() as u64);
        blockdec_obs::counter("planner.dedup_hits").add(self.dedup_hits() as u64);
        let per_group: Vec<Vec<MeasurementSeries>> =
            self.groups.iter().map(|g| eval_group(g, cols)).collect();
        let mut out = Vec::with_capacity(self.slots.len());
        let mut windows_emitted = 0u64;
        for &(gi, slot) in &self.slots {
            let series = per_group[gi][slot].clone();
            windows_emitted += series.points.len() as u64;
            out.push(series);
        }
        blockdec_obs::counter("engine.windows").add(windows_emitted);
        blockdec_obs::debug!(
            configs = self.configs(), specs = self.window_specs(), windows = windows_emitted;
            "matrix plan complete"
        );
        out
    }
}

/// Materialize one group's window stream and fan its rows out into one
/// series per metric.
fn eval_group(group: &SpecGroup, cols: ColumnsSlice<'_>) -> Vec<MeasurementSeries> {
    let rows = match group.window {
        WindowSpec::FixedCalendar {
            granularity,
            origin,
        } => eval_fixed(cols, granularity, origin, &group.metrics),
        WindowSpec::SlidingBlocks(spec) => eval_sliding(cols, spec, &group.metrics),
        WindowSpec::SlidingTime(spec) => eval_sliding_time(cols, spec, &group.metrics),
    };
    // Each row's scratch fill served every metric past the first for free.
    blockdec_obs::counter("planner.scratch_reuse")
        .add((rows.len() * group.metrics.len().saturating_sub(1)) as u64);
    let mut per_metric: Vec<Vec<MeasurementPoint>> = group
        .metrics
        .iter()
        .map(|_| Vec::with_capacity(rows.len()))
        .collect();
    for row in &rows {
        for (slot, &value) in row.values.iter().enumerate() {
            per_metric[slot].push(MeasurementPoint {
                index: row.index,
                start_height: row.start_height,
                end_height: row.end_height,
                start_time: row.start_time,
                end_time: row.end_time,
                blocks: row.blocks,
                producers: row.producers,
                value,
            });
        }
    }
    group
        .metrics
        .iter()
        .zip(per_metric)
        .map(|(&metric, points)| MeasurementSeries {
            metric,
            window: group.window.label(),
            points,
        })
        .collect()
}

/// Sort the window's distribution into the shared scratch once, then
/// evaluate every metric of the group from the pre-sorted slice.
/// `(first, last)` are the window's inclusive block-position bounds in
/// `cols`.
fn finish_row(
    index: i64,
    cols: ColumnsSlice<'_>,
    (first, last): (usize, usize),
    blocks: u64,
    dist: &ProducerDistribution,
    scratch: &mut Vec<f64>,
    metrics: &[MetricKind],
) -> WindowRow {
    dist.sorted_weights_into(scratch);
    WindowRow {
        index,
        start_height: cols.height(first),
        end_height: cols.height(last),
        start_time: cols.timestamp(first),
        end_time: cols.timestamp(last),
        blocks,
        producers: dist.producers() as u64,
        values: metrics.iter().map(|m| m.compute_sorted(scratch)).collect(),
    }
}

/// Partition `total` window indices into contiguous chunks across scoped
/// workers; `eval` computes one chunk's rows. Single-chunk totals run
/// inline without spawning.
fn run_chunked<F>(total: usize, eval: F) -> Vec<WindowRow>
where
    F: Fn(Range<usize>) -> Vec<WindowRow> + Sync,
{
    if total == 0 {
        return Vec::new();
    }
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let workers = cores.min(total.div_ceil(MIN_CHUNK_WINDOWS)).max(1);
    blockdec_obs::counter("planner.chunks").add(workers as u64);
    if workers == 1 {
        let _t = blockdec_obs::Timer::new("planner.chunk");
        return eval(0..total);
    }
    let per = total.div_ceil(workers);
    let bounds: Vec<Range<usize>> = (0..workers)
        .map(|w| (w * per)..((w + 1) * per).min(total))
        .filter(|r| !r.is_empty())
        .collect();
    let eval = &eval;
    let mut chunks: Vec<Vec<WindowRow>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .into_iter()
            .map(|r| {
                scope.spawn(move || {
                    let _t = blockdec_obs::Timer::new("planner.chunk");
                    eval(r)
                })
            })
            .collect();
        chunks = handles
            .into_iter()
            .map(|h| h.join().expect("planner chunk worker panicked")) // blockdec-lint: allow(panic) — join only fails by propagating a worker panic; nothing to recover
            .collect();
    });
    chunks.into_iter().flatten().collect()
}

fn eval_fixed(
    cols: ColumnsSlice<'_>,
    granularity: Granularity,
    origin: Timestamp,
    metrics: &[MetricKind],
) -> Vec<WindowRow> {
    let windows = fixed_calendar_windows_columns(cols, granularity, origin);
    run_chunked(windows.len(), |chunk| {
        let mut dist = ProducerDistribution::new();
        let mut scratch = Vec::new();
        let mut rows = Vec::with_capacity(chunk.len());
        for w in &windows[chunk] {
            dist.clear();
            for &i in &w.block_indices {
                dist.add_credits(cols.producers_of(i as usize), cols.weights_of(i as usize));
            }
            let first = w.block_indices[0] as usize;
            let last = w.block_indices[w.block_indices.len() - 1] as usize;
            rows.push(finish_row(
                w.bucket,
                cols,
                (first, last),
                w.block_indices.len() as u64,
                &dist,
                &mut scratch,
                metrics,
            ));
        }
        rows
    })
}

fn eval_sliding(
    cols: ColumnsSlice<'_>,
    spec: SlidingWindowSpec,
    metrics: &[MetricKind],
) -> Vec<WindowRow> {
    let total = spec.window_count(cols.len());
    run_chunked(total, |chunk| {
        let mut dist = ProducerDistribution::new();
        let mut scratch = Vec::new();
        let mut rows = Vec::with_capacity(chunk.len());
        let mut current: Option<Range<usize>> = None;
        for wi in chunk {
            let range = spec
                .window_range(wi, cols.len())
                .expect("window within count"); // blockdec-lint: allow(panic) — run_chunked only yields indices below the window count
            match current.take() {
                // Overlapping advance: O(step) slide, same arm the
                // engine's own sliding path takes.
                Some(prev) if prev.end > range.start => {
                    for b in prev.start..range.start {
                        dist.remove_credits(cols.producers_of(b), cols.weights_of(b));
                    }
                    for b in prev.end..range.end {
                        dist.add_credits(cols.producers_of(b), cols.weights_of(b));
                    }
                }
                // Chunk-leading window, or a gap (step > size): rebuild.
                _ => {
                    dist.clear();
                    for b in range.clone() {
                        dist.add_credits(cols.producers_of(b), cols.weights_of(b));
                    }
                }
            }
            rows.push(finish_row(
                wi as i64,
                cols,
                (range.start, range.end - 1),
                range.len() as u64,
                &dist,
                &mut scratch,
                metrics,
            ));
            current = Some(range);
        }
        rows
    })
}

fn eval_sliding_time(
    cols: ColumnsSlice<'_>,
    spec: TimeWindowSpec,
    metrics: &[MetricKind],
) -> Vec<WindowRow> {
    // One permutation sort per spec, shared by every chunk and metric.
    let order = timestamp_order_columns(cols);
    let windows = time_windows_columns(cols, &order, spec);
    let (order, windows) = (&order, &windows);
    run_chunked(windows.len(), move |chunk| {
        let mut dist = ProducerDistribution::new();
        let mut scratch = Vec::new();
        let mut rows = Vec::with_capacity(chunk.len());
        let mut current: Option<Range<usize>> = None;
        for w in &windows[chunk] {
            match current.take() {
                // Time windows advance monotonically through `order`, so
                // overlapping windows slide just like block windows.
                Some(prev) if prev.end > w.blocks.start => {
                    for &i in &order[prev.start..w.blocks.start] {
                        dist.remove_credits(
                            cols.producers_of(i as usize),
                            cols.weights_of(i as usize),
                        );
                    }
                    for &i in &order[prev.end..w.blocks.end] {
                        dist.add_credits(
                            cols.producers_of(i as usize),
                            cols.weights_of(i as usize),
                        );
                    }
                }
                _ => {
                    dist.clear();
                    for &i in &order[w.blocks.clone()] {
                        dist.add_credits(
                            cols.producers_of(i as usize),
                            cols.weights_of(i as usize),
                        );
                    }
                }
            }
            rows.push(finish_row(
                w.index as i64,
                cols,
                (
                    order[w.blocks.start] as usize,
                    order[w.blocks.end - 1] as usize,
                ),
                w.blocks.len() as u64,
                &dist,
                &mut scratch,
                metrics,
            ));
            current = Some(w.blocks.clone());
        }
        rows
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdec_chain::time::SECS_PER_DAY;
    use blockdec_chain::{Credit, ProducerId};

    fn stream(pattern: &[u32], n: usize, spacing: i64) -> Vec<AttributedBlock> {
        let o = Timestamp::year_2019_start().secs();
        (0..n)
            .map(|i| AttributedBlock {
                height: 1000 + i as u64,
                timestamp: Timestamp(o + i as i64 * spacing),
                credits: vec![Credit {
                    producer: ProducerId(pattern[i % pattern.len()]),
                    weight: 1.0,
                }],
            })
            .collect()
    }

    fn paper_fixed_and_sliding_configs() -> Vec<MeasurementEngine> {
        MetricKind::PAPER
            .iter()
            .flat_map(|&m| {
                vec![
                    MeasurementEngine::new(m)
                        .fixed_calendar(Granularity::Day, Timestamp::year_2019_start()),
                    MeasurementEngine::new(m).sliding(24, 12),
                    MeasurementEngine::new(m).sliding_time(SECS_PER_DAY, SECS_PER_DAY / 2),
                ]
            })
            .collect()
    }

    #[test]
    fn plan_dedups_window_specs() {
        let configs = paper_fixed_and_sliding_configs();
        let plan = MatrixPlan::new(&configs);
        assert_eq!(plan.configs(), 9);
        assert_eq!(plan.window_specs(), 3);
        assert_eq!(plan.dedup_hits(), 6);
    }

    #[test]
    fn duplicate_configs_collapse_but_both_answer() {
        let cfg = MeasurementEngine::new(MetricKind::Gini).sliding(10, 5);
        let plan = MatrixPlan::new(&[cfg, cfg]);
        assert_eq!(plan.window_specs(), 1);
        let blocks = stream(&[0, 1, 2], 40, 60);
        let out = plan.run(&blocks);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[0], cfg.run(&blocks));
    }

    #[test]
    fn planner_equals_engine_on_small_matrix() {
        let blocks = stream(&[0, 0, 1, 2, 3], 300, 500);
        let configs = paper_fixed_and_sliding_configs();
        let out = MatrixPlan::new(&configs).run(&blocks);
        for (cfg, series) in configs.iter().zip(&out) {
            assert_eq!(series, &cfg.run(&blocks));
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(MatrixPlan::new(&[]).run(&stream(&[0], 5, 60)).is_empty());
        let cfg = MeasurementEngine::new(MetricKind::Gini).sliding(10, 5);
        let out = MatrixPlan::new(&[cfg]).run(&[]);
        assert_eq!(out.len(), 1);
        assert!(out[0].points.is_empty());
    }

    #[test]
    fn columnar_sub_slice_equals_aos_sub_slice() {
        // Multi-credit anomaly blocks plus a zero-credit block, evaluated
        // through a ColumnsSlice whose credit offsets do NOT start at 0 —
        // the planner must handle rebased views identically to a fresh
        // conversion of the same AoS range.
        let mut blocks = stream(&[0, 1, 2, 3], 400, 600);
        for k in 0..30usize {
            let i = 13 * (k + 1) % blocks.len();
            blocks[i].credits = (0..5 + k as u32)
                .map(|j| Credit {
                    producer: ProducerId(100 + j),
                    weight: 1.0,
                })
                .collect();
        }
        blocks[200].credits.clear();
        let cols = BlockColumns::from_blocks(&blocks);
        let configs = paper_fixed_and_sliding_configs();
        let plan = MatrixPlan::new(&configs);
        for (lo, hi) in [(0, 400), (37, 391), (150, 150)] {
            let via_cols = plan.run_columns(cols.slice(lo, hi));
            let via_aos = plan.run(&blocks[lo..hi]);
            assert_eq!(via_cols, via_aos, "range {lo}..{hi}");
        }
    }

    #[test]
    fn chunked_evaluation_covers_every_window_in_order() {
        // Enough windows to force multiple chunks on multicore hosts; on
        // any host the result must be the naive engine's, in order.
        let blocks = stream(&[0, 1, 1, 2, 3, 4, 4, 4], 2000, 60);
        let cfg = MeasurementEngine::new(MetricKind::Hhi).sliding(64, 8);
        let out = MatrixPlan::new(&[cfg]).run(&blocks);
        assert_eq!(out[0], cfg.run(&blocks));
        let indices: Vec<i64> = out[0].points.iter().map(|p| p.index).collect();
        let sorted = {
            let mut s = indices.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(indices, sorted);
    }
}
