//! Incremental metric deltas for head-following ingestion.
//!
//! A [`MetricDeltaStream`] consumes attributed blocks one at a time — the
//! finalized output of a reorg-aware chain view — and emits each
//! [`MeasurementPoint`] the moment its window completes. The contract is
//! **bitwise**: the emitted point sequence is `assert_eq!`-equal to what
//! [`crate::engine::MeasurementEngine`] (and therefore
//! [`crate::planner::MatrixPlan`]) computes over the same final stream,
//! because the delta path replays the batch engine's exact
//! [`ProducerDistribution::add_credits`] / [`ProducerDistribution::remove_credits`]
//! call sequence — same calls, same order, same f64 rounding.
//!
//! Two window families stream:
//!
//! * **sliding block windows** — a ring of the last `size + step` blocks
//!   plus one carried distribution; window `i` is emitted as soon as block
//!   `i·step + size − 1` arrives;
//! * **fixed calendar windows** — per-bucket distributions with a small
//!   *lag horizon* `K` (default 2): bucket `B` is emitted once a block of
//!   bucket `≥ B + K` is seen, which tolerates miner timestamp jitter; a
//!   block landing in an already-emitted bucket is a
//!   [`DeltaError::BucketRegression`].
//!
//! Time-based sliding windows sort the *whole* stream by `(timestamp,
//! height)` before windowing and are therefore not streamable — use the
//! batch engine for those.

use crate::distribution::ProducerDistribution;
use crate::metrics::MetricKind;
use crate::series::{MeasurementPoint, WindowLabel};
use crate::windows::sliding::SlidingWindowSpec;
use blockdec_chain::{AttributedBlock, Granularity, ProducerId, Timestamp};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::ops::Range;

/// Default fixed-calendar lag horizon: buckets are held until a block two
/// buckets later is seen, which covers the simulator's ±130 s timestamp
/// jitter (and real-chain jitter) at every paper granularity.
pub const DEFAULT_BUCKET_LAG: i64 = 2;

/// Errors from pushing a block into a delta stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// A block's calendar bucket is at or below one already emitted; the
    /// lag horizon was too small for this stream's timestamp jitter.
    BucketRegression {
        /// The offending block's bucket.
        bucket: i64,
        /// Highest bucket already emitted.
        emitted_through: i64,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::BucketRegression {
                bucket,
                emitted_through,
            } => write!(
                f,
                "block falls in calendar bucket {bucket} but buckets through \
                 {emitted_through} were already emitted (increase the lag horizon)"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// What a buffered block contributes: position, time, and flat credit
/// columns (mirroring the store's columnar layout).
#[derive(Clone, Debug)]
struct Contribution {
    height: u64,
    timestamp: Timestamp,
    producers: Vec<ProducerId>,
    weights: Vec<f64>,
}

/// Sliding-mode state: the engine's one carried distribution plus a ring
/// of the blocks a future window may still remove.
#[derive(Debug)]
struct SlidingState {
    spec: SlidingWindowSpec,
    dist: ProducerDistribution,
    /// Blocks at global indices `base..base + ring.len()`.
    ring: VecDeque<Contribution>,
    base: usize,
    total: usize,
    prev: Option<Range<usize>>,
    next_window: usize,
}

/// One calendar bucket being accumulated (the batch path's fresh
/// per-bucket distribution, grown in stream order).
#[derive(Debug)]
struct BucketAcc {
    dist: ProducerDistribution,
    first_height: u64,
    first_time: Timestamp,
    last_height: u64,
    last_time: Timestamp,
    blocks: u64,
}

/// Fixed-mode state: open buckets ordered by bucket index.
#[derive(Debug)]
struct FixedState {
    granularity: Granularity,
    origin: Timestamp,
    lag: i64,
    open: BTreeMap<i64, BucketAcc>,
    max_seen: Option<i64>,
    emitted_through: Option<i64>,
}

#[derive(Debug)]
enum Mode {
    Sliding(SlidingState),
    Fixed(FixedState),
}

/// A push-driven measurement stream: feed finalized blocks in canonical
/// order, iterate completed [`MeasurementPoint`]s out.
///
/// The stream is also an [`Iterator`] — each `next()` yields one
/// completed-but-unconsumed point, so a follow loop can subscribe with
/// `for point in &mut stream { ... }` after every push.
#[derive(Debug)]
pub struct MetricDeltaStream {
    metric: MetricKind,
    mode: Mode,
    ready: VecDeque<MeasurementPoint>,
    finished: bool,
}

impl MetricDeltaStream {
    /// Stream a metric over sliding block windows.
    pub fn sliding(metric: MetricKind, spec: SlidingWindowSpec) -> MetricDeltaStream {
        MetricDeltaStream {
            metric,
            mode: Mode::Sliding(SlidingState {
                spec,
                dist: ProducerDistribution::new(),
                ring: VecDeque::new(),
                base: 0,
                total: 0,
                prev: None,
                next_window: 0,
            }),
            ready: VecDeque::new(),
            finished: false,
        }
    }

    /// Stream a metric over fixed calendar windows with the default lag
    /// horizon ([`DEFAULT_BUCKET_LAG`]).
    pub fn fixed(metric: MetricKind, granularity: Granularity, origin: Timestamp) -> Self {
        MetricDeltaStream::fixed_with_lag(metric, granularity, origin, DEFAULT_BUCKET_LAG)
    }

    /// Stream a metric over fixed calendar windows, holding each bucket
    /// until a block `lag` buckets later is seen (`lag ≥ 1`).
    pub fn fixed_with_lag(
        metric: MetricKind,
        granularity: Granularity,
        origin: Timestamp,
        lag: i64,
    ) -> MetricDeltaStream {
        assert!(lag >= 1, "bucket lag must be at least 1");
        MetricDeltaStream {
            metric,
            mode: Mode::Fixed(FixedState {
                granularity,
                origin,
                lag,
                open: BTreeMap::new(),
                max_seen: None,
                emitted_through: None,
            }),
            ready: VecDeque::new(),
            finished: false,
        }
    }

    /// The metric being streamed.
    pub fn metric(&self) -> MetricKind {
        self.metric
    }

    /// The window label carried by batch series over the same spec.
    pub fn label(&self) -> WindowLabel {
        match &self.mode {
            Mode::Sliding(s) => WindowLabel::SlidingBlocks {
                size: s.spec.size,
                step: s.spec.step,
            },
            Mode::Fixed(s) => WindowLabel::FixedCalendar {
                granularity: s.granularity.label().to_string(),
            },
        }
    }

    /// Push one finalized block (flat credit columns). Completed windows
    /// queue up for [`MetricDeltaStream::poll`] / iteration; the return
    /// value is how many completed on this push.
    ///
    /// # Panics
    /// If called after [`MetricDeltaStream::finish`].
    pub fn push(
        &mut self,
        height: u64,
        timestamp: Timestamp,
        producers: &[ProducerId],
        weights: &[f64],
    ) -> Result<usize, DeltaError> {
        assert!(!self.finished, "push after finish()");
        debug_assert_eq!(producers.len(), weights.len(), "parallel credit columns");
        let c = Contribution {
            height,
            timestamp,
            producers: producers.to_vec(),
            weights: weights.to_vec(),
        };
        let before = self.ready.len();
        match &mut self.mode {
            Mode::Sliding(s) => {
                s.ring.push_back(c);
                s.total += 1;
                Self::drain_sliding(&mut self.ready, self.metric, s);
            }
            Mode::Fixed(s) => Self::push_fixed(&mut self.ready, self.metric, s, c)?,
        }
        Ok(self.ready.len() - before)
    }

    /// [`MetricDeltaStream::push`] from an [`AttributedBlock`].
    pub fn push_block(&mut self, block: &AttributedBlock) -> Result<usize, DeltaError> {
        let producers: Vec<ProducerId> = block.credits.iter().map(|c| c.producer).collect();
        let weights: Vec<f64> = block.credits.iter().map(|c| c.weight).collect();
        self.push(block.height, block.timestamp, &producers, &weights)
    }

    /// Emit every sliding window that is now complete, replaying the batch
    /// engine's add/remove sequence verbatim.
    fn drain_sliding(
        ready: &mut VecDeque<MeasurementPoint>,
        metric: MetricKind,
        s: &mut SlidingState,
    ) {
        while let Some(range) = s.spec.window_range(s.next_window, s.total) {
            let at = |i: usize| &s.ring[i - s.base];
            match s.prev.take() {
                Some(p) if p.end > range.start => {
                    for b in p.start..range.start {
                        let c = at(b);
                        s.dist.remove_credits(&c.producers, &c.weights);
                    }
                    for b in p.end..range.end {
                        let c = at(b);
                        s.dist.add_credits(&c.producers, &c.weights);
                    }
                }
                _ => {
                    s.dist.clear();
                    for b in range.clone() {
                        let c = at(b);
                        s.dist.add_credits(&c.producers, &c.weights);
                    }
                }
            }
            let first = at(range.start);
            let last = at(range.end - 1);
            ready.push_back(MeasurementPoint {
                index: s.next_window as i64,
                start_height: first.height,
                end_height: last.height,
                start_time: first.timestamp,
                end_time: last.timestamp,
                blocks: range.len() as u64,
                producers: s.dist.producers() as u64,
                value: metric.compute(&s.dist.weight_vector()),
            });
            s.prev = Some(range.clone());
            s.next_window += 1;
            // The next window removes nothing below its predecessor's
            // start; everything earlier can leave the ring.
            while s.base < range.start {
                s.ring.pop_front();
                s.base += 1;
            }
        }
    }

    /// Route one block to its calendar bucket, then emit every bucket now
    /// outside the lag horizon.
    fn push_fixed(
        ready: &mut VecDeque<MeasurementPoint>,
        metric: MetricKind,
        s: &mut FixedState,
        c: Contribution,
    ) -> Result<(), DeltaError> {
        let bucket = c.timestamp.bucket(s.granularity, s.origin);
        if let Some(done) = s.emitted_through {
            if bucket <= done {
                return Err(DeltaError::BucketRegression {
                    bucket,
                    emitted_through: done,
                });
            }
        }
        let acc = s.open.entry(bucket).or_insert_with(|| BucketAcc {
            dist: ProducerDistribution::new(),
            first_height: c.height,
            first_time: c.timestamp,
            last_height: c.height,
            last_time: c.timestamp,
            blocks: 0,
        });
        acc.dist.add_credits(&c.producers, &c.weights);
        acc.last_height = c.height;
        acc.last_time = c.timestamp;
        acc.blocks += 1;
        s.max_seen = Some(s.max_seen.map_or(bucket, |m| m.max(bucket)));
        let horizon = s.max_seen.unwrap_or(bucket) - s.lag;
        Self::drain_fixed(ready, metric, s, horizon);
        Ok(())
    }

    /// Emit open buckets `≤ horizon`, ascending — the batch path's bucket
    /// order.
    fn drain_fixed(
        ready: &mut VecDeque<MeasurementPoint>,
        metric: MetricKind,
        s: &mut FixedState,
        horizon: i64,
    ) {
        while let Some(entry) = s.open.first_entry() {
            if *entry.key() > horizon {
                break;
            }
            let (bucket, acc) = entry.remove_entry();
            ready.push_back(MeasurementPoint {
                index: bucket,
                start_height: acc.first_height,
                end_height: acc.last_height,
                start_time: acc.first_time,
                end_time: acc.last_time,
                blocks: acc.blocks,
                producers: acc.dist.producers() as u64,
                value: metric.compute(&acc.dist.weight_vector()),
            });
            s.emitted_through = Some(bucket);
        }
    }

    /// End of stream: flush windows that were only held back by the lag
    /// horizon (fixed mode; sliding windows either completed or never
    /// will). Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if let Mode::Fixed(s) = &mut self.mode {
            Self::drain_fixed(&mut self.ready, self.metric, s, i64::MAX);
        }
    }

    /// Take the next completed point, if any.
    pub fn poll(&mut self) -> Option<MeasurementPoint> {
        self.ready.pop_front()
    }

    /// Completed points waiting to be consumed.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Finish the stream and drain everything still queued.
    pub fn into_points(mut self) -> Vec<MeasurementPoint> {
        self.finish();
        self.ready.into_iter().collect()
    }
}

impl Iterator for MetricDeltaStream {
    type Item = MeasurementPoint;

    /// The subscription side: yields completed windows as they become
    /// available, `None` when the consumer has caught up.
    fn next(&mut self) -> Option<MeasurementPoint> {
        self.poll()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MeasurementEngine;
    use blockdec_chain::Credit;

    /// `pattern[i]` produces block i (cycling), one block per `spacing`
    /// seconds from the 2019 origin, with deterministic ±jitter.
    fn stream(pattern: &[u32], n: usize, spacing: i64, jitter: i64) -> Vec<AttributedBlock> {
        let o = Timestamp::year_2019_start().secs();
        (0..n)
            .map(|i| {
                let j = if jitter == 0 {
                    0
                } else {
                    ((i as i64) * 7919 % (2 * jitter)) - jitter
                };
                AttributedBlock {
                    height: 1000 + i as u64,
                    timestamp: Timestamp(o + i as i64 * spacing + j),
                    credits: vec![Credit {
                        producer: ProducerId(pattern[i % pattern.len()]),
                        weight: 1.0,
                    }],
                }
            })
            .collect()
    }

    fn push_all(
        stream: &mut MetricDeltaStream,
        blocks: &[AttributedBlock],
    ) -> Vec<MeasurementPoint> {
        let mut out = Vec::new();
        for b in blocks {
            stream.push_block(b).unwrap();
            out.extend(&mut *stream);
        }
        stream.finish();
        out.extend(stream);
        out
    }

    #[test]
    fn sliding_deltas_are_bitwise_equal_to_the_batch_engine() {
        let blocks = stream(&[0, 0, 1, 2, 3, 3, 3, 4], 300, 600, 0);
        for metric in [
            MetricKind::Gini,
            MetricKind::ShannonEntropy,
            MetricKind::Nakamoto,
            MetricKind::Hhi,
        ] {
            let spec = SlidingWindowSpec::new(40, 15);
            let batch = MeasurementEngine::new(metric)
                .sliding_spec(spec)
                .run(&blocks);
            let mut s = MetricDeltaStream::sliding(metric, spec);
            let points = push_all(&mut s, &blocks);
            assert_eq!(points, batch.points, "{metric:?}");
        }
    }

    #[test]
    fn sliding_gap_steps_match_the_rebuild_arm() {
        let blocks = stream(&[0, 1, 2], 100, 600, 0);
        let spec = SlidingWindowSpec::new(4, 10);
        let batch = MeasurementEngine::new(MetricKind::Nakamoto)
            .sliding_spec(spec)
            .run(&blocks);
        let mut s = MetricDeltaStream::sliding(MetricKind::Nakamoto, spec);
        assert_eq!(push_all(&mut s, &blocks), batch.points);
    }

    #[test]
    fn sliding_emits_the_moment_a_window_completes() {
        let blocks = stream(&[0, 1], 30, 600, 0);
        let spec = SlidingWindowSpec::new(10, 5);
        let mut s = MetricDeltaStream::sliding(MetricKind::Gini, spec);
        for (i, b) in blocks.iter().enumerate() {
            let emitted = s.push_block(b).unwrap();
            // Window w completes exactly at block w*5 + 9.
            let expect = if i >= 9 && (i - 9) % 5 == 0 { 1 } else { 0 };
            assert_eq!(emitted, expect, "block {i}");
        }
    }

    #[test]
    fn sliding_ring_stays_bounded() {
        let blocks = stream(&[0, 1, 2, 3], 5_000, 600, 0);
        let spec = SlidingWindowSpec::new(144, 72);
        let mut s = MetricDeltaStream::sliding(MetricKind::ShannonEntropy, spec);
        for b in &blocks {
            s.push_block(b).unwrap();
            while s.poll().is_some() {}
            if let Mode::Sliding(state) = &s.mode {
                assert!(
                    state.ring.len() <= spec.size + spec.step,
                    "ring grew to {}",
                    state.ring.len()
                );
            }
        }
    }

    #[test]
    fn fixed_deltas_are_bitwise_equal_to_the_batch_engine() {
        // ±130 s jitter straddles day boundaries, exercising the lag.
        let blocks = stream(&[0, 0, 1, 2], 600, 3600, 130);
        let origin = Timestamp::year_2019_start();
        for g in [Granularity::Day, Granularity::Week, Granularity::Month] {
            let batch = MeasurementEngine::new(MetricKind::Gini)
                .fixed_calendar(g, origin)
                .run(&blocks);
            let mut s = MetricDeltaStream::fixed(MetricKind::Gini, g, origin);
            assert_eq!(push_all(&mut s, &blocks), batch.points, "{g:?}");
        }
    }

    #[test]
    fn fixed_bucket_regression_is_an_error() {
        let o = Timestamp::year_2019_start().secs();
        let day = blockdec_chain::time::SECS_PER_DAY;
        let mk = |h: u64, t: i64| AttributedBlock {
            height: h,
            timestamp: Timestamp(t),
            credits: vec![Credit {
                producer: ProducerId(0),
                weight: 1.0,
            }],
        };
        let mut s = MetricDeltaStream::fixed(
            MetricKind::Gini,
            Granularity::Day,
            Timestamp::year_2019_start(),
        );
        s.push_block(&mk(1, o)).unwrap();
        s.push_block(&mk(2, o + 3 * day)).unwrap(); // emits bucket 0
        let err = s.push_block(&mk(3, o + 10)).unwrap_err();
        assert_eq!(
            err,
            DeltaError::BucketRegression {
                bucket: 0,
                emitted_through: 0
            }
        );
        assert!(err.to_string().contains("bucket 0"));
    }

    #[test]
    fn fractional_credits_stream_fine() {
        // Unlike CountMultiset, the distribution path handles fractional
        // attribution — parity with the batch engine, not an approximation.
        let o = Timestamp::year_2019_start().secs();
        let blocks: Vec<AttributedBlock> = (0..60)
            .map(|i| AttributedBlock {
                height: i,
                timestamp: Timestamp(o + i as i64 * 600),
                credits: vec![
                    Credit {
                        producer: ProducerId(i as u32 % 3),
                        weight: 0.5,
                    },
                    Credit {
                        producer: ProducerId(3 + i as u32 % 2),
                        weight: 0.5,
                    },
                ],
            })
            .collect();
        let spec = SlidingWindowSpec::new(12, 6);
        let batch = MeasurementEngine::new(MetricKind::ShannonEntropy)
            .sliding_spec(spec)
            .run(&blocks);
        let mut s = MetricDeltaStream::sliding(MetricKind::ShannonEntropy, spec);
        assert_eq!(push_all(&mut s, &blocks), batch.points);
    }

    #[test]
    fn finish_is_idempotent_and_into_points_drains() {
        let blocks = stream(&[0, 1], 50, 3600, 0);
        let origin = Timestamp::year_2019_start();
        let mut s = MetricDeltaStream::fixed(MetricKind::Nakamoto, Granularity::Day, origin);
        for b in &blocks {
            s.push_block(b).unwrap();
        }
        s.finish();
        s.finish();
        let n = s.ready_len();
        let batch = MeasurementEngine::new(MetricKind::Nakamoto)
            .fixed_calendar(Granularity::Day, origin)
            .run(&blocks);
        assert_eq!(n, batch.points.len());

        let mut s2 = MetricDeltaStream::fixed(MetricKind::Nakamoto, Granularity::Day, origin);
        for b in &blocks {
            s2.push_block(b).unwrap();
        }
        assert_eq!(s2.into_points(), batch.points);
    }

    #[test]
    fn label_matches_batch_series() {
        let s = MetricDeltaStream::sliding(MetricKind::Gini, SlidingWindowSpec::new(10, 5));
        assert_eq!(s.label(), WindowLabel::SlidingBlocks { size: 10, step: 5 });
        let f = MetricDeltaStream::fixed(
            MetricKind::Gini,
            Granularity::Week,
            Timestamp::year_2019_start(),
        );
        assert!(matches!(f.label(), WindowLabel::FixedCalendar { .. }));
    }
}
