//! The measurement engine: metric × windowing → series.
//!
//! [`MeasurementEngine`] is the single entry point the examples, CLI, and
//! experiment harness use. Configure a metric and a windowing policy, then
//! [`MeasurementEngine::run`] it over a height-ordered slice of attributed
//! blocks. [`run_matrix`] evaluates many (metric, windowing) combinations
//! in one call; it is a compatibility wrapper over the matrix planner
//! ([`crate::planner`]), which deduplicates shared window specs so the
//! full paper matrix (3 metrics × 3 granularities × 2 window families × 2
//! chains) windows and accumulates each unique window stream once instead
//! of once per configuration.

use crate::distribution::ProducerDistribution;
use crate::metrics::MetricKind;
use crate::series::{MeasurementPoint, MeasurementSeries, WindowLabel};
use crate::windows::fixed::fixed_calendar_windows_columns;
use crate::windows::sliding::SlidingWindowSpec;
use crate::windows::sliding_time::{time_windows_columns, TimeWindowSpec};
use blockdec_chain::{AttributedBlock, BlockColumns, ColumnsSlice, Granularity, Timestamp};
use serde::{Deserialize, Serialize};

/// Windowing policy for a measurement run.
///
/// `Eq + Hash` so the matrix planner can group configurations by window
/// spec and materialize each unique window stream once.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WindowSpec {
    /// Calendar fixed windows (§II-C) at a granularity from an origin.
    FixedCalendar {
        /// Day / week / month.
        granularity: Granularity,
        /// Calendar origin (the paper uses 2019-01-01T00:00Z).
        origin: Timestamp,
    },
    /// Block-count sliding windows (§III).
    SlidingBlocks(SlidingWindowSpec),
    /// Time-based sliding windows (extension; see
    /// [`crate::windows::sliding_time`]).
    SlidingTime(TimeWindowSpec),
}

impl WindowSpec {
    /// The serializable label of this window spec, as carried by
    /// [`MeasurementSeries::window`].
    pub fn label(&self) -> WindowLabel {
        match self {
            WindowSpec::FixedCalendar { granularity, .. } => WindowLabel::FixedCalendar {
                granularity: granularity.label().to_string(),
            },
            WindowSpec::SlidingBlocks(s) => WindowLabel::SlidingBlocks {
                size: s.size,
                step: s.step,
            },
            WindowSpec::SlidingTime(s) => WindowLabel::SlidingTime {
                duration_secs: s.duration_secs,
                step_secs: s.step_secs,
            },
        }
    }
}

/// A configured measurement: one metric over one windowing policy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeasurementEngine {
    metric: MetricKind,
    window: WindowSpec,
}

impl MeasurementEngine {
    /// Start configuring an engine for a metric. The windowing defaults
    /// to daily fixed calendar windows from the 2019 origin.
    pub fn new(metric: MetricKind) -> MeasurementEngine {
        MeasurementEngine {
            metric,
            window: WindowSpec::FixedCalendar {
                granularity: Granularity::Day,
                origin: Timestamp::year_2019_start(),
            },
        }
    }

    /// Use calendar fixed windows at `granularity` from `origin`.
    pub fn fixed_calendar(mut self, granularity: Granularity, origin: Timestamp) -> Self {
        self.window = WindowSpec::FixedCalendar {
            granularity,
            origin,
        };
        self
    }

    /// Use sliding windows of `size` blocks advancing `step` blocks.
    pub fn sliding(mut self, size: usize, step: usize) -> Self {
        self.window = WindowSpec::SlidingBlocks(SlidingWindowSpec::new(size, step));
        self
    }

    /// Use a pre-built sliding spec.
    pub fn sliding_spec(mut self, spec: SlidingWindowSpec) -> Self {
        self.window = WindowSpec::SlidingBlocks(spec);
        self
    }

    /// Use time-based sliding windows of `duration_secs` advancing
    /// `step_secs` (extension; the dual of the paper's block-count
    /// windows).
    pub fn sliding_time(mut self, duration_secs: i64, step_secs: i64) -> Self {
        self.window = WindowSpec::SlidingTime(TimeWindowSpec::new(duration_secs, step_secs));
        self
    }

    /// Time-based sliding windows aligned to an explicit origin (e.g.
    /// midnight, so 24h/24h windows coincide with calendar days).
    pub fn sliding_time_aligned(
        mut self,
        duration_secs: i64,
        step_secs: i64,
        align: Timestamp,
    ) -> Self {
        self.window =
            WindowSpec::SlidingTime(TimeWindowSpec::new(duration_secs, step_secs).aligned(align));
        self
    }

    /// The configured metric.
    pub fn metric(&self) -> MetricKind {
        self.metric
    }

    /// The configured windowing policy.
    pub fn window(&self) -> WindowSpec {
        self.window
    }

    /// Measure a height-ordered block stream.
    ///
    /// Thin compatibility wrapper: converts to [`BlockColumns`] and
    /// delegates to [`MeasurementEngine::run_columns`], which is the
    /// canonical evaluation path.
    pub fn run(&self, blocks: &[AttributedBlock]) -> MeasurementSeries {
        let cols = BlockColumns::from_blocks(blocks);
        self.run_columns(cols.as_slice())
    }

    /// Measure a height-ordered columnar block stream. This is the
    /// canonical path: every windowing family iterates the flat columns
    /// directly and no per-block credit `Vec` is touched.
    pub fn run_columns(&self, cols: ColumnsSlice<'_>) -> MeasurementSeries {
        let window_label = self.window.label().label();
        let _t = blockdec_obs::span_timed!(
            "stage.measure",
            metric = self.metric.to_string(),
            window = window_label,
            blocks = cols.len(),
        );
        let points = match self.window {
            WindowSpec::FixedCalendar {
                granularity,
                origin,
            } => self.run_fixed(cols, granularity, origin),
            WindowSpec::SlidingBlocks(spec) => self.run_sliding(cols, spec),
            WindowSpec::SlidingTime(spec) => self.run_sliding_time(cols, spec),
        };
        blockdec_obs::counter("engine.runs").inc();
        blockdec_obs::counter("engine.blocks").add(cols.len() as u64);
        blockdec_obs::counter("engine.windows").add(points.len() as u64);
        blockdec_obs::debug!(windows = points.len(); "measurement complete");
        MeasurementSeries {
            metric: self.metric,
            window: self.window.label(),
            points,
        }
    }

    fn point_from_distribution(
        &self,
        index: i64,
        cols: ColumnsSlice<'_>,
        first: usize,
        last: usize,
        blocks: u64,
        dist: &ProducerDistribution,
    ) -> MeasurementPoint {
        debug_assert!(blocks > 0);
        MeasurementPoint {
            index,
            start_height: cols.height(first),
            end_height: cols.height(last),
            start_time: cols.timestamp(first),
            end_time: cols.timestamp(last),
            blocks,
            producers: dist.producers() as u64,
            value: self.metric.compute(&dist.weight_vector()),
        }
    }

    fn run_fixed(
        &self,
        cols: ColumnsSlice<'_>,
        granularity: Granularity,
        origin: Timestamp,
    ) -> Vec<MeasurementPoint> {
        fixed_calendar_windows_columns(cols, granularity, origin)
            .into_iter()
            .map(|w| {
                let mut dist = ProducerDistribution::new();
                for &i in &w.block_indices {
                    dist.add_credits(cols.producers_of(i as usize), cols.weights_of(i as usize));
                }
                let first = w.block_indices[0] as usize;
                let last = w.block_indices[w.block_indices.len() - 1] as usize;
                self.point_from_distribution(
                    w.bucket,
                    cols,
                    first,
                    last,
                    w.block_indices.len() as u64,
                    &dist,
                )
            })
            .collect()
    }

    fn run_sliding_time(
        &self,
        cols: ColumnsSlice<'_>,
        spec: TimeWindowSpec,
    ) -> Vec<MeasurementPoint> {
        // Time windows assign by timestamp: order a view by time (miner
        // clock jitter makes height order only approximately time order).
        // A sorted u32 permutation replaces the former deep clone of the
        // whole stream — 4 bytes per block instead of a full copy.
        let order = timestamp_order_columns(cols);
        time_windows_columns(cols, &order, spec)
            .into_iter()
            .map(|w| {
                let mut dist = ProducerDistribution::new();
                for &i in &order[w.blocks.clone()] {
                    dist.add_credits(cols.producers_of(i as usize), cols.weights_of(i as usize));
                }
                let first = order[w.blocks.start] as usize;
                let last = order[w.blocks.end - 1] as usize;
                self.point_from_distribution(
                    w.index as i64,
                    cols,
                    first,
                    last,
                    w.blocks.len() as u64,
                    &dist,
                )
            })
            .collect()
    }

    fn run_sliding(
        &self,
        cols: ColumnsSlice<'_>,
        spec: SlidingWindowSpec,
    ) -> Vec<MeasurementPoint> {
        let mut points = Vec::with_capacity(spec.window_count(cols.len()));
        let mut dist = ProducerDistribution::new();
        let mut current: Option<std::ops::Range<usize>> = None;
        for (i, range) in spec.iter(cols.len()).enumerate() {
            match current.take() {
                // Overlapping advance: drop the leading `step` blocks, add
                // the trailing ones — O(step) instead of O(size).
                Some(prev) if prev.end > range.start => {
                    for b in prev.start..range.start {
                        dist.remove_credits(cols.producers_of(b), cols.weights_of(b));
                    }
                    for b in prev.end..range.end {
                        dist.add_credits(cols.producers_of(b), cols.weights_of(b));
                    }
                }
                // Gap or first window: rebuild.
                _ => {
                    dist.clear();
                    for b in range.clone() {
                        dist.add_credits(cols.producers_of(b), cols.weights_of(b));
                    }
                }
            }
            points.push(self.point_from_distribution(
                i as i64,
                cols,
                range.start,
                range.end - 1,
                range.len() as u64,
                &dist,
            ));
            current = Some(range);
        }
        points
    }
}

/// The timestamp-sorted `u32` permutation of a block slice, ties broken
/// by height: `order[j]` indexes the j-th block by `(timestamp, height)`.
pub fn timestamp_order(blocks: &[AttributedBlock]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..blocks.len() as u32).collect();
    order.sort_unstable_by_key(|&i| {
        let b = &blocks[i as usize];
        (b.timestamp, b.height)
    });
    order
}

/// [`timestamp_order`] over columnar storage — the permutation the
/// engine's and the planner's time-window paths sort. Only the timestamp
/// and height columns are read.
pub fn timestamp_order_columns(cols: ColumnsSlice<'_>) -> Vec<u32> {
    let mut order: Vec<u32> = (0..cols.len() as u32).collect();
    order.sort_unstable_by_key(|&i| (cols.timestamp(i as usize), cols.height(i as usize)));
    order
}

/// Run many engine configurations over the same block stream.
///
/// Compatibility wrapper over the matrix planner
/// ([`crate::planner::MatrixPlan`]): configurations sharing a window spec
/// are grouped so each unique window stream is materialized once and
/// every metric reads one shared sorted scratch buffer per window.
/// Results come back in configuration order and are exactly equal
/// (bit-for-bit for the paper's unit-credit attribution) to running each
/// configuration separately.
pub fn run_matrix(
    blocks: &[AttributedBlock],
    configs: &[MeasurementEngine],
) -> Vec<MeasurementSeries> {
    crate::planner::MatrixPlan::new(configs).run(blocks)
}

/// [`run_matrix`] over columnar storage: the store → columns → planner
/// pipeline with zero AoS materialization.
pub fn run_matrix_columns(
    cols: ColumnsSlice<'_>,
    configs: &[MeasurementEngine],
) -> Vec<MeasurementSeries> {
    crate::planner::MatrixPlan::new(configs).run_columns(cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdec_chain::time::SECS_PER_DAY;
    use blockdec_chain::{Credit, ProducerId};

    /// `pattern[i]` produces block i (cycling), one block per `spacing`
    /// seconds from the 2019 origin.
    fn stream(pattern: &[u32], n: usize, spacing: i64) -> Vec<AttributedBlock> {
        let o = Timestamp::year_2019_start().secs();
        (0..n)
            .map(|i| AttributedBlock {
                height: 1000 + i as u64,
                timestamp: Timestamp(o + i as i64 * spacing),
                credits: vec![Credit {
                    producer: ProducerId(pattern[i % pattern.len()]),
                    weight: 1.0,
                }],
            })
            .collect()
    }

    #[test]
    fn fixed_daily_series_shape() {
        // 6 blocks/day for 10 days, producers rotate 0,1,2.
        let blocks = stream(&[0, 1, 2], 60, SECS_PER_DAY / 6);
        let s = MeasurementEngine::new(MetricKind::Gini)
            .fixed_calendar(Granularity::Day, Timestamp::year_2019_start())
            .run(&blocks);
        assert_eq!(s.points.len(), 10);
        for p in &s.points {
            assert_eq!(p.blocks, 6);
            assert_eq!(p.producers, 3);
            // Perfect rotation → perfectly equal shares → Gini 0.
            assert!(p.value.abs() < 1e-12);
        }
        assert_eq!(s.points[0].start_height, 1000);
        assert_eq!(s.points[0].end_height, 1005);
    }

    #[test]
    fn sliding_series_matches_eq5_and_batch() {
        let blocks = stream(&[0, 0, 0, 1, 2], 100, 60);
        let spec = SlidingWindowSpec::new(20, 10);
        let s = MeasurementEngine::new(MetricKind::ShannonEntropy)
            .sliding_spec(spec)
            .run(&blocks);
        assert_eq!(s.points.len(), spec.window_count(100));
        // Cross-check every point against a fresh batch computation.
        for (i, range) in spec.iter(100).enumerate() {
            let dist = ProducerDistribution::from_blocks(&blocks[range]);
            let expected = MetricKind::ShannonEntropy.compute(&dist.weight_vector());
            assert!(
                (s.points[i].value - expected).abs() < 1e-9,
                "window {i}: {} vs {expected}",
                s.points[i].value
            );
        }
    }

    #[test]
    fn sliding_with_gap_step_rebuilds() {
        let blocks = stream(&[0, 1], 50, 60);
        // step > size → windows don't overlap, exercising the rebuild arm.
        let s = MeasurementEngine::new(MetricKind::Nakamoto)
            .sliding(4, 10)
            .run(&blocks);
        let spec = SlidingWindowSpec::new(4, 10);
        assert_eq!(s.points.len(), spec.window_count(50));
        for p in &s.points {
            assert_eq!(p.blocks, 4);
            assert_eq!(p.value, 2.0); // two equal producers → both needed
        }
    }

    #[test]
    fn multi_credit_blocks_feed_all_producers() {
        let o = Timestamp::year_2019_start().secs();
        let mut blocks = stream(&[0], 10, 60);
        // One anomaly block credited to 5 extra producers.
        blocks.push(AttributedBlock {
            height: 2000,
            timestamp: Timestamp(o + 1000),
            credits: (10..15)
                .map(|i| Credit {
                    producer: ProducerId(i),
                    weight: 1.0,
                })
                .collect(),
        });
        let s = MeasurementEngine::new(MetricKind::ShannonEntropy)
            .fixed_calendar(Granularity::Day, Timestamp::year_2019_start())
            .run(&blocks);
        assert_eq!(s.points.len(), 1);
        assert_eq!(s.points[0].blocks, 11);
        assert_eq!(s.points[0].producers, 6);
    }

    #[test]
    fn empty_stream_empty_series() {
        let s = MeasurementEngine::new(MetricKind::Gini).run(&[]);
        assert!(s.points.is_empty());
        let s = MeasurementEngine::new(MetricKind::Gini)
            .sliding(10, 5)
            .run(&[]);
        assert!(s.points.is_empty());
    }

    #[test]
    fn matrix_matches_individual_runs() {
        let blocks = stream(&[0, 0, 1, 2, 3], 200, 600);
        let configs: Vec<MeasurementEngine> = MetricKind::PAPER
            .iter()
            .flat_map(|&m| {
                vec![
                    MeasurementEngine::new(m)
                        .fixed_calendar(Granularity::Day, Timestamp::year_2019_start()),
                    MeasurementEngine::new(m).sliding(24, 12),
                ]
            })
            .collect();
        let parallel = run_matrix(&blocks, &configs);
        assert_eq!(parallel.len(), configs.len());
        for (cfg, series) in configs.iter().zip(&parallel) {
            assert_eq!(series, &cfg.run(&blocks));
        }
    }

    #[test]
    fn sliding_time_windows_measure_by_timestamp() {
        // 6 blocks/day for 6 days; one-day windows stepping half a day.
        let blocks = stream(&[0, 1, 2], 36, SECS_PER_DAY / 6);
        let s = MeasurementEngine::new(MetricKind::Gini)
            .sliding_time(SECS_PER_DAY, SECS_PER_DAY / 2)
            .run(&blocks);
        // span ≈ 6 days minus one window, half-day steps → ~11 windows.
        assert!((9..=11).contains(&s.points.len()), "{}", s.points.len());
        for p in &s.points {
            assert_eq!(p.blocks, 6);
            // Perfect rotation with window=multiple of pattern → Gini 0.
            assert!(p.value.abs() < 1e-12);
        }
        assert_eq!(
            s.window.label(),
            format!("sliding-time/{SECS_PER_DAY}/{}", SECS_PER_DAY / 2)
        );
    }

    #[test]
    fn sliding_time_handles_out_of_order_timestamps() {
        let mut blocks = stream(&[0, 1], 48, 3600);
        // Swap two timestamps so height order ≠ time order.
        let t = blocks[10].timestamp;
        blocks[10].timestamp = blocks[11].timestamp;
        blocks[11].timestamp = t;
        let s = MeasurementEngine::new(MetricKind::ShannonEntropy)
            .sliding_time(6 * 3600, 3 * 3600)
            .run(&blocks);
        assert!(!s.points.is_empty());
        for p in &s.points {
            assert!(p.start_time <= p.end_time);
        }
    }

    #[test]
    fn engine_accessors() {
        let e = MeasurementEngine::new(MetricKind::Hhi).sliding(10, 5);
        assert_eq!(e.metric(), MetricKind::Hhi);
        assert!(matches!(e.window(), WindowSpec::SlidingBlocks(_)));
    }
}
