//! Block-count sliding windows (§III-A).
//!
//! A sliding window of size `N` blocks advances `M` blocks per step, so
//! consecutive windows share `N − M` blocks. With `S` total blocks the
//! number of full windows is the paper's Eq. 5:
//!
//! ```text
//! L = (S − N) / M + 1        (integer division; 0 when S < N)
//! ```
//!
//! The paper fixes `M = N/2`, doubling the number of measurements per
//! year relative to fixed windows; [`SlidingWindowSpec::paper`] encodes
//! that choice.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Size/step parameters of a sliding window.
///
/// ```
/// use blockdec_core::windows::sliding::SlidingWindowSpec;
/// // The paper's Bitcoin day window: N = 144, M = 72.
/// let spec = SlidingWindowSpec::paper(144);
/// assert_eq!(spec.overlap(), 72);
/// // Eq. 5 over a nominal Bitcoin year:
/// assert_eq!(spec.window_count(52_560), 729);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlidingWindowSpec {
    /// Window size N in blocks. Must be ≥ 1.
    pub size: usize,
    /// Step M in blocks. Must be ≥ 1 (M > N is legal and leaves gaps).
    pub step: usize,
}

impl SlidingWindowSpec {
    /// A window with explicit size and step.
    ///
    /// # Panics
    /// If `size == 0` or `step == 0`.
    pub fn new(size: usize, step: usize) -> SlidingWindowSpec {
        assert!(size > 0, "window size must be positive");
        assert!(step > 0, "step must be positive");
        SlidingWindowSpec { size, step }
    }

    /// The paper's configuration: step M = N/2 (N must be even ≥ 2).
    pub fn paper(size: usize) -> SlidingWindowSpec {
        assert!(size >= 2, "paper windows need N >= 2");
        SlidingWindowSpec::new(size, size / 2)
    }

    /// Overlap N − M between consecutive windows (0 when M ≥ N).
    pub fn overlap(&self) -> usize {
        self.size.saturating_sub(self.step)
    }

    /// Eq. 5: number of full windows over `total_blocks` blocks.
    pub fn window_count(&self, total_blocks: usize) -> usize {
        if total_blocks < self.size {
            0
        } else {
            (total_blocks - self.size) / self.step + 1
        }
    }

    /// The index range of the `i`-th window (0-based); `None` when it
    /// would run past the stream end.
    pub fn window_range(&self, i: usize, total_blocks: usize) -> Option<Range<usize>> {
        let start = i.checked_mul(self.step)?;
        let end = start.checked_add(self.size)?;
        (end <= total_blocks).then_some(start..end)
    }

    /// Iterate all full windows over a stream of `total_blocks` blocks.
    pub fn iter(&self, total_blocks: usize) -> SlidingWindowIter {
        SlidingWindowIter {
            spec: *self,
            total_blocks,
            next: 0,
        }
    }
}

/// Iterator over the index ranges of successive sliding windows.
#[derive(Clone, Debug)]
pub struct SlidingWindowIter {
    spec: SlidingWindowSpec,
    total_blocks: usize,
    next: usize,
}

impl Iterator for SlidingWindowIter {
    type Item = Range<usize>;

    fn next(&mut self) -> Option<Range<usize>> {
        let r = self.spec.window_range(self.next, self.total_blocks)?;
        self.next += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self
            .spec
            .window_count(self.total_blocks)
            .saturating_sub(self.next);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SlidingWindowIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq5_window_count() {
        // S=10, N=4, M=2 → (10−4)/2+1 = 4 windows.
        let spec = SlidingWindowSpec::new(4, 2);
        assert_eq!(spec.window_count(10), 4);
        // Not enough blocks.
        assert_eq!(spec.window_count(3), 0);
        // Exactly one window.
        assert_eq!(spec.window_count(4), 1);
        // Paper Bitcoin day windows: S=54231? Use nominal year: S=52560,
        // N=144, M=72 → (52560−144)/72+1 = 729 ≈ "about 700 results".
        let day = SlidingWindowSpec::paper(144);
        assert_eq!(day.window_count(52_560), 729);
    }

    #[test]
    fn paper_spec_halves() {
        let s = SlidingWindowSpec::paper(144);
        assert_eq!(s.size, 144);
        assert_eq!(s.step, 72);
        assert_eq!(s.overlap(), 72);
    }

    #[test]
    fn ranges_advance_by_step() {
        let spec = SlidingWindowSpec::new(4, 2);
        let ranges: Vec<_> = spec.iter(10).collect();
        assert_eq!(ranges, vec![0..4, 2..6, 4..8, 6..10]);
    }

    #[test]
    fn consecutive_windows_share_overlap() {
        let spec = SlidingWindowSpec::new(6, 2);
        let ranges: Vec<_> = spec.iter(12).collect();
        for pair in ranges.windows(2) {
            let shared = pair[0].end.saturating_sub(pair[1].start);
            assert_eq!(shared, spec.overlap());
        }
    }

    #[test]
    fn step_larger_than_size_leaves_gaps() {
        let spec = SlidingWindowSpec::new(2, 5);
        let ranges: Vec<_> = spec.iter(12).collect();
        assert_eq!(ranges, vec![0..2, 5..7, 10..12]);
        assert_eq!(spec.overlap(), 0);
    }

    #[test]
    fn step_equal_to_size_is_fixed_windows() {
        // M = N degenerates to non-overlapping fixed-length windows.
        let spec = SlidingWindowSpec::new(3, 3);
        let ranges: Vec<_> = spec.iter(9).collect();
        assert_eq!(ranges, vec![0..3, 3..6, 6..9]);
    }

    #[test]
    fn window_range_bounds() {
        let spec = SlidingWindowSpec::new(4, 2);
        assert_eq!(spec.window_range(0, 10), Some(0..4));
        assert_eq!(spec.window_range(3, 10), Some(6..10));
        assert_eq!(spec.window_range(4, 10), None);
    }

    #[test]
    fn iterator_len_matches_eq5() {
        for (s, n, m) in [(100, 10, 3), (57, 8, 8), (9, 10, 1), (1000, 144, 72)] {
            let spec = SlidingWindowSpec::new(n, m);
            let it = spec.iter(s);
            assert_eq!(it.len(), spec.window_count(s));
            assert_eq!(it.count(), spec.window_count(s));
        }
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn zero_size_panics() {
        SlidingWindowSpec::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        SlidingWindowSpec::new(4, 0);
    }

    #[test]
    fn doubling_property() {
        // §III-A: with M = N/2 the number of measurements roughly doubles
        // versus fixed windows (S/N of them).
        let s = 52_560;
        let n = 144;
        let fixed = s / n;
        let sliding = SlidingWindowSpec::paper(n).window_count(s);
        assert!(sliding >= 2 * fixed - 2);
        assert!(sliding <= 2 * fixed);
    }
}
