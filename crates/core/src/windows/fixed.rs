//! Calendar fixed windows (§II-C).
//!
//! Each block is assigned to the day / 7-day week / calendar month
//! containing its timestamp, measured from an origin (2019-01-01 for the
//! paper's year). Windows never overlap; two consecutive windows share no
//! blocks. Assignment is by timestamp, not position, so the occasional
//! out-of-order Bitcoin timestamp lands in the bucket its miner declared —
//! the same behaviour as a BigQuery `GROUP BY DATE(timestamp)`.

use blockdec_chain::{AttributedBlock, ColumnsSlice, Granularity, Timestamp};
use std::collections::BTreeMap;
use std::ops::Range;

/// One calendar bucket and the (index) ranges of blocks inside it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedWindow {
    /// Bucket index from the origin (day number, week number, or month
    /// number; 0-based).
    pub bucket: i64,
    /// Indices into the source block slice belonging to this bucket, in
    /// stream order. Usually one contiguous range; timestamp jitter can
    /// split it.
    pub block_indices: Vec<u32>,
}

impl FixedWindow {
    /// Convenience for the common contiguous case in tests.
    pub fn contiguous(bucket: i64, range: Range<u32>) -> FixedWindow {
        FixedWindow {
            bucket,
            block_indices: range.collect(),
        }
    }
}

/// Partition a block slice into calendar windows at a granularity.
///
/// Returns windows sorted by bucket index. Buckets with no blocks simply
/// do not appear (the paper's plots likewise have no point for an empty
/// day — which never occurs in real 2019 data).
pub fn fixed_calendar_windows(
    blocks: &[AttributedBlock],
    granularity: Granularity,
    origin: Timestamp,
) -> Vec<FixedWindow> {
    windows_by_bucket(blocks.len(), |i| {
        blocks[i].timestamp.bucket(granularity, origin)
    })
}

/// [`fixed_calendar_windows`] over columnar storage: bucketing needs only
/// the timestamp column, so no AoS view is ever materialized.
pub fn fixed_calendar_windows_columns(
    cols: ColumnsSlice<'_>,
    granularity: Granularity,
    origin: Timestamp,
) -> Vec<FixedWindow> {
    windows_by_bucket(cols.len(), |i| {
        cols.timestamp(i).bucket(granularity, origin)
    })
}

/// Shared bucketing walk over any timestamped view: `bucket_at` maps a
/// position in `0..len` to its calendar bucket.
fn windows_by_bucket(len: usize, bucket_at: impl Fn(usize) -> i64) -> Vec<FixedWindow> {
    let mut buckets: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
    for i in 0..len {
        buckets
            .entry(bucket_at(i))
            .or_default()
            // blockdec-lint: allow(panic) — u32 block indices cap a run at 4 billion blocks by design
            .push(u32::try_from(i).expect("more than u32::MAX blocks in one run"));
    }
    buckets
        .into_iter()
        .map(|(bucket, block_indices)| FixedWindow {
            bucket,
            block_indices,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdec_chain::time::SECS_PER_DAY;
    use blockdec_chain::{Credit, ProducerId};

    fn block_at(height: u64, t: i64) -> AttributedBlock {
        AttributedBlock {
            height,
            timestamp: Timestamp(t),
            credits: vec![Credit {
                producer: ProducerId(0),
                weight: 1.0,
            }],
        }
    }

    fn origin() -> Timestamp {
        Timestamp::year_2019_start()
    }

    #[test]
    fn daily_partition() {
        let o = origin().secs();
        let blocks = vec![
            block_at(1, o),
            block_at(2, o + 100),
            block_at(3, o + SECS_PER_DAY),
            block_at(4, o + SECS_PER_DAY * 2 + 5),
        ];
        let w = fixed_calendar_windows(&blocks, Granularity::Day, origin());
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].bucket, 0);
        assert_eq!(w[0].block_indices, vec![0, 1]);
        assert_eq!(w[1].bucket, 1);
        assert_eq!(w[1].block_indices, vec![2]);
        assert_eq!(w[2].bucket, 2);
    }

    #[test]
    fn weekly_partition() {
        let o = origin().secs();
        let blocks: Vec<AttributedBlock> = (0..21)
            .map(|d| block_at(d, o + (d as i64) * SECS_PER_DAY + 1))
            .collect();
        let w = fixed_calendar_windows(&blocks, Granularity::Week, origin());
        assert_eq!(w.len(), 3);
        for (i, win) in w.iter().enumerate() {
            assert_eq!(win.bucket, i as i64);
            assert_eq!(win.block_indices.len(), 7);
        }
    }

    #[test]
    fn monthly_partition_uses_calendar_months() {
        // Jan has 31 days, Feb 28: a block on Jan 31 is month 0, on Feb 1
        // month 1, on Mar 1 month 2.
        let o = origin().secs();
        let blocks = vec![
            block_at(1, o + 30 * SECS_PER_DAY), // Jan 31
            block_at(2, o + 31 * SECS_PER_DAY), // Feb 1
            block_at(3, o + 59 * SECS_PER_DAY), // Mar 1
        ];
        let w = fixed_calendar_windows(&blocks, Granularity::Month, origin());
        assert_eq!(
            w.iter().map(|x| x.bucket).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn out_of_order_timestamp_lands_in_declared_bucket() {
        let o = origin().secs();
        let blocks = vec![
            block_at(1, o + 10),
            block_at(2, o + SECS_PER_DAY + 10),
            // Miner-declared timestamp back in day 0 even though the block
            // follows a day-1 block.
            block_at(3, o + 20),
            block_at(4, o + SECS_PER_DAY + 30),
        ];
        let w = fixed_calendar_windows(&blocks, Granularity::Day, origin());
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].block_indices, vec![0, 2]);
        assert_eq!(w[1].block_indices, vec![1, 3]);
    }

    #[test]
    fn empty_input_yields_no_windows() {
        assert!(fixed_calendar_windows(&[], Granularity::Day, origin()).is_empty());
    }

    #[test]
    fn pre_origin_blocks_get_negative_buckets() {
        let o = origin().secs();
        let blocks = vec![block_at(1, o - 10), block_at(2, o + 10)];
        let w = fixed_calendar_windows(&blocks, Granularity::Day, origin());
        assert_eq!(w[0].bucket, -1);
        assert_eq!(w[1].bucket, 0);
    }

    #[test]
    fn full_year_has_365_days_52_weeks_12_months() {
        let o = origin().secs();
        // One block every 6 hours for all of 2019.
        let blocks: Vec<AttributedBlock> = (0..365 * 4)
            .map(|i| block_at(i, o + (i as i64) * 21_600))
            .collect();
        let days = fixed_calendar_windows(&blocks, Granularity::Day, origin());
        assert_eq!(days.len(), 365);
        let weeks = fixed_calendar_windows(&blocks, Granularity::Week, origin());
        // 365 days = 52 full weeks + 1 day spilling into week 52.
        assert_eq!(weeks.len(), 53);
        assert_eq!(weeks.last().unwrap().block_indices.len(), 4);
        let months = fixed_calendar_windows(&blocks, Granularity::Month, origin());
        assert_eq!(months.len(), 12);
        // January: 31 days × 4 blocks.
        assert_eq!(months[0].block_indices.len(), 124);
        // February 2019: 28 days × 4.
        assert_eq!(months[1].block_indices.len(), 112);
    }
}
