//! Window formation over block streams.
//!
//! * [`fixed`] — calendar fixed windows (§II-C): non-overlapping buckets
//!   of a day, a week, or a month, assigned by each block's timestamp.
//! * [`sliding`] — block-count sliding windows (§III-A): windows of N
//!   blocks advancing M blocks at a time, so consecutive windows share
//!   N − M blocks and cross-interval changes stay visible.
//! * [`sliding_time`] — time-based sliding windows (extension): a fixed
//!   calendar duration advancing by a fixed step, the dual of the
//!   paper's block-count windows.

pub mod fixed;
pub mod sliding;
pub mod sliding_time;

pub use fixed::{fixed_calendar_windows, FixedWindow};
pub use sliding::{SlidingWindowIter, SlidingWindowSpec};
pub use sliding_time::{time_windows, TimeWindow, TimeWindowSpec};
