//! Time-based sliding windows (methodological extension).
//!
//! The paper's sliding windows are *block-count* windows: N blocks
//! advancing M blocks (§III-A). On Bitcoin, block production varies ±30%
//! around 144/day with difficulty lag, so a 144-block window sometimes
//! spans 18 hours and sometimes 30 — the measurement granularity itself
//! wobbles. A *time-based* sliding window (duration D seconds advancing
//! S seconds) holds the calendar span fixed and lets the block count
//! vary instead, which is the natural dual and a useful robustness check
//! on any conclusion drawn from block-count windows.
//!
//! Assignment is by timestamp. Windows are emitted only when they contain
//! at least one block; `L = (total_span − D) / S + 1` full windows are
//! considered, mirroring Eq. 5 in the time domain.

use blockdec_chain::{AttributedBlock, ColumnsSlice, Timestamp};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Duration/step parameters of a time-based sliding window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeWindowSpec {
    /// Window duration in seconds. Must be ≥ 1.
    pub duration_secs: i64,
    /// Step in seconds. Must be ≥ 1.
    pub step_secs: i64,
    /// Optional alignment instant: windows start at
    /// `align + k·step` instead of at the first block's timestamp.
    /// Aligning to midnight makes a 24h/24h spec coincide with calendar
    /// days.
    pub align: Option<i64>,
}

impl TimeWindowSpec {
    /// A window with explicit duration and step.
    ///
    /// # Panics
    /// If either parameter is non-positive.
    pub fn new(duration_secs: i64, step_secs: i64) -> TimeWindowSpec {
        assert!(duration_secs > 0, "duration must be positive");
        assert!(step_secs > 0, "step must be positive");
        TimeWindowSpec {
            duration_secs,
            step_secs,
            align: None,
        }
    }

    /// Anchor window starts at `align + k·step` (builder style).
    pub fn aligned(mut self, align: Timestamp) -> TimeWindowSpec {
        self.align = Some(align.secs());
        self
    }

    /// The paper's half-overlap convention in the time domain:
    /// step = duration/2.
    pub fn paper(duration_secs: i64) -> TimeWindowSpec {
        assert!(duration_secs >= 2, "paper windows need duration >= 2");
        TimeWindowSpec::new(duration_secs, duration_secs / 2)
    }

    /// Eq. 5 in the time domain: number of full windows inside
    /// `[start, end)`.
    pub fn window_count(&self, start: Timestamp, end: Timestamp) -> usize {
        let span = end.secs() - start.secs();
        if span < self.duration_secs {
            0
        } else {
            ((span - self.duration_secs) / self.step_secs + 1) as usize
        }
    }

    /// The half-open time range `[window_start, window_end)` of window
    /// `i` from an origin.
    pub fn window_span(&self, i: usize, origin: Timestamp) -> Range<i64> {
        let start = origin.secs() + i as i64 * self.step_secs;
        start..start + self.duration_secs
    }
}

/// One time window over a block slice: the window's time span plus the
/// contiguous index range of blocks inside it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimeWindow {
    /// Window index.
    pub index: usize,
    /// Time span `[start, end)` in seconds.
    pub span: Range<i64>,
    /// Index range into the source block slice (timestamp-ordered view).
    pub blocks: Range<usize>,
}

/// Enumerate the windows of a timestamp-ordered block slice between the
/// first and last block's timestamps. Windows containing zero blocks are
/// skipped (they carry no distribution to measure).
///
/// Blocks must be sorted by timestamp; Bitcoin's per-block jitter means
/// callers sort a copy first (see
/// [`crate::engine::MeasurementEngine::run`]'s time-window path, which
/// does exactly that).
pub fn time_windows(blocks: &[AttributedBlock], spec: TimeWindowSpec) -> Vec<TimeWindow> {
    debug_assert!(
        blocks.windows(2).all(|w| w[0].timestamp <= w[1].timestamp),
        "blocks must be timestamp-ordered"
    );
    windows_over(blocks.len(), |i| blocks[i].timestamp.secs(), spec)
}

/// [`time_windows`] over a timestamp-ordered *permutation* of a block
/// slice: `order[j]` is the index into `blocks` of the j-th block by
/// `(timestamp, height)`. The emitted [`TimeWindow::blocks`] ranges index
/// into `order`, not into `blocks` — so callers window an unsorted stream
/// without cloning it (the engine's time-window path sorts a `Vec<u32>`
/// of indices instead of the blocks themselves).
pub fn time_windows_indexed(
    blocks: &[AttributedBlock],
    order: &[u32],
    spec: TimeWindowSpec,
) -> Vec<TimeWindow> {
    debug_assert_eq!(order.len(), blocks.len(), "order must be a permutation");
    debug_assert!(
        order
            .windows(2)
            .all(|w| blocks[w[0] as usize].timestamp <= blocks[w[1] as usize].timestamp),
        "order must be timestamp-sorted"
    );
    windows_over(
        order.len(),
        |i| blocks[order[i] as usize].timestamp.secs(),
        spec,
    )
}

/// [`time_windows_indexed`] over columnar storage: the walk touches only
/// the timestamp column through the permutation, nothing else.
pub fn time_windows_columns(
    cols: ColumnsSlice<'_>,
    order: &[u32],
    spec: TimeWindowSpec,
) -> Vec<TimeWindow> {
    debug_assert_eq!(order.len(), cols.len(), "order must be a permutation");
    debug_assert!(
        order
            .windows(2)
            .all(|w| cols.timestamp(w[0] as usize) <= cols.timestamp(w[1] as usize)),
        "order must be timestamp-sorted"
    );
    windows_over(
        order.len(),
        |i| cols.timestamp(order[i] as usize).secs(),
        spec,
    )
}

/// Shared two-cursor window walk over any timestamp-ordered view: `ts_at`
/// maps a view position in `0..len` to its timestamp in seconds.
fn windows_over(len: usize, ts_at: impl Fn(usize) -> i64, spec: TimeWindowSpec) -> Vec<TimeWindow> {
    if len == 0 {
        return Vec::new();
    }
    let (first, last) = (ts_at(0), ts_at(len - 1));
    // Anchor at the explicit alignment when given, snapped forward so the
    // first window is the earliest aligned one that can contain a block.
    let origin = match spec.align {
        Some(align) => {
            let delta = first - align;
            let k = if delta >= 0 {
                delta / spec.step_secs
            } else {
                0
            };
            Timestamp(align + k * spec.step_secs)
        }
        None => Timestamp(first),
    };
    let end = Timestamp(last + 1);
    let count = spec.window_count(origin, end);
    let mut out = Vec::with_capacity(count);
    // Two moving cursors: windows advance monotonically, so each block is
    // visited O(duration/step) times total.
    let mut lo = 0usize;
    for i in 0..count {
        let span = spec.window_span(i, origin);
        while lo < len && ts_at(lo) < span.start {
            lo += 1;
        }
        let mut hi = lo;
        while hi < len && ts_at(hi) < span.end {
            hi += 1;
        }
        if hi > lo {
            out.push(TimeWindow {
                index: i,
                span,
                blocks: lo..hi,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdec_chain::{Credit, ProducerId};

    fn block(i: u64, t: i64) -> AttributedBlock {
        AttributedBlock {
            height: i,
            timestamp: Timestamp(t),
            credits: vec![Credit {
                producer: ProducerId(0),
                weight: 1.0,
            }],
        }
    }

    #[test]
    fn window_count_mirrors_eq5() {
        let spec = TimeWindowSpec::new(100, 50);
        assert_eq!(spec.window_count(Timestamp(0), Timestamp(300)), 5);
        assert_eq!(spec.window_count(Timestamp(0), Timestamp(100)), 1);
        assert_eq!(spec.window_count(Timestamp(0), Timestamp(99)), 0);
    }

    #[test]
    fn paper_convention_halves() {
        let s = TimeWindowSpec::paper(86_400);
        assert_eq!(s.duration_secs, 86_400);
        assert_eq!(s.step_secs, 43_200);
    }

    #[test]
    fn spans_advance_by_step() {
        let spec = TimeWindowSpec::new(100, 40);
        assert_eq!(spec.window_span(0, Timestamp(1000)), 1000..1100);
        assert_eq!(spec.window_span(1, Timestamp(1000)), 1040..1140);
        assert_eq!(spec.window_span(2, Timestamp(1000)), 1080..1180);
    }

    #[test]
    fn blocks_partition_into_windows() {
        // Blocks every 10s from t=0 to t=190.
        let blocks: Vec<AttributedBlock> = (0..20).map(|i| block(i, i as i64 * 10)).collect();
        let windows = time_windows(&blocks, TimeWindowSpec::new(50, 25));
        assert!(!windows.is_empty());
        for w in &windows {
            for b in &blocks[w.blocks.clone()] {
                assert!(w.span.contains(&b.timestamp.secs()));
            }
            // Blocks just outside are excluded.
            if w.blocks.start > 0 {
                assert!(blocks[w.blocks.start - 1].timestamp.secs() < w.span.start);
            }
            if w.blocks.end < blocks.len() {
                assert!(blocks[w.blocks.end].timestamp.secs() >= w.span.end);
            }
        }
        // Half-overlap: consecutive windows share blocks.
        let shared = windows[0]
            .blocks
            .end
            .saturating_sub(windows[1].blocks.start);
        assert!(shared > 0, "consecutive windows must overlap");
    }

    #[test]
    fn empty_windows_are_skipped() {
        // A burst of blocks, a long silence, another burst.
        let mut blocks: Vec<AttributedBlock> = (0..5).map(|i| block(i, i as i64)).collect();
        blocks.extend((0..5).map(|i| block(100 + i, 1_000 + i as i64)));
        let windows = time_windows(&blocks, TimeWindowSpec::new(10, 5));
        assert!(windows.iter().all(|w| !w.blocks.is_empty()));
        // Silence (t=5..1000) produces no windows.
        assert!(windows
            .iter()
            .all(|w| w.span.start < 10 || w.span.end > 1_000));
    }

    #[test]
    fn empty_input() {
        assert!(time_windows(&[], TimeWindowSpec::new(10, 5)).is_empty());
    }

    #[test]
    fn stream_shorter_than_one_window_yields_nothing() {
        // Eq. 5 semantics: spans shorter than the duration emit no full
        // window — a lone block cannot fill a 10s window.
        let blocks = vec![block(0, 500)];
        assert!(time_windows(&blocks, TimeWindowSpec::new(10, 5)).is_empty());
    }

    #[test]
    fn span_exactly_one_window() {
        let blocks: Vec<AttributedBlock> = (0..10).map(|i| block(i, i as i64)).collect();
        let windows = time_windows(&blocks, TimeWindowSpec::new(10, 5));
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].blocks, 0..10);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_panics() {
        TimeWindowSpec::new(0, 1);
    }

    #[test]
    fn indexed_windows_match_sorted_clone() {
        // Jittered timestamps, deliberately out of order.
        let times = [50i64, 10, 30, 0, 40, 20, 60, 35];
        let blocks: Vec<AttributedBlock> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| block(i as u64, t))
            .collect();
        let mut order: Vec<u32> = (0..blocks.len() as u32).collect();
        order.sort_unstable_by_key(|&i| (blocks[i as usize].timestamp, blocks[i as usize].height));
        let mut sorted = blocks.clone();
        sorted.sort_by_key(|b| (b.timestamp, b.height));
        let spec = TimeWindowSpec::new(25, 10);
        let via_clone = time_windows(&sorted, spec);
        let via_index = time_windows_indexed(&blocks, &order, spec);
        assert_eq!(via_clone, via_index);
        // And the ranges select the same blocks through the permutation.
        for (a, b) in via_clone.iter().zip(&via_index) {
            let clone_heights: Vec<u64> = sorted[a.blocks.clone()]
                .iter()
                .map(|blk| blk.height)
                .collect();
            let index_heights: Vec<u64> = order[b.blocks.clone()]
                .iter()
                .map(|&i| blocks[i as usize].height)
                .collect();
            assert_eq!(clone_heights, index_heights);
        }
    }

    #[test]
    fn fixed_block_count_varies_under_time_windows() {
        // Accelerating production: earlier time windows hold fewer blocks
        // than later ones — the wobble block-count windows hide.
        let mut t = 0i64;
        let blocks: Vec<AttributedBlock> = (0..100)
            .map(|i| {
                t += 100 - i / 2; // speeding up
                block(i as u64, t)
            })
            .collect();
        let windows = time_windows(&blocks, TimeWindowSpec::new(1_000, 500));
        let first = windows.first().unwrap().blocks.len();
        let last = windows.last().unwrap().blocks.len();
        assert!(
            last > first,
            "late windows must hold more blocks ({first} vs {last})"
        );
    }
}
