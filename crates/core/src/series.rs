//! Measurement results: one value per window.

use crate::metrics::MetricKind;
use blockdec_chain::Timestamp;
use serde::{Deserialize, Serialize};

/// One measured window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeasurementPoint {
    /// Window index: the calendar bucket (day/week/month number from the
    /// origin) for fixed windows, or the slide index `i` for sliding
    /// windows.
    pub index: i64,
    /// Height of the first block in the window.
    pub start_height: u64,
    /// Height of the last block in the window (inclusive).
    pub end_height: u64,
    /// Timestamp of the first block.
    pub start_time: Timestamp,
    /// Timestamp of the last block.
    pub end_time: Timestamp,
    /// Number of blocks in the window.
    pub blocks: u64,
    /// Number of distinct producers credited in the window.
    pub producers: u64,
    /// The metric value.
    pub value: f64,
}

/// How the windows of a series were formed — carried on the series so
/// reports can label output without replumbing configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WindowLabel {
    /// Calendar fixed windows at a granularity ("day", "week", "month").
    FixedCalendar {
        /// Granularity label.
        granularity: String,
    },
    /// Block-count sliding windows.
    SlidingBlocks {
        /// Window size N in blocks.
        size: usize,
        /// Step M in blocks.
        step: usize,
    },
    /// Time-based sliding windows (extension).
    SlidingTime {
        /// Window duration in seconds.
        duration_secs: i64,
        /// Step in seconds.
        step_secs: i64,
    },
}

impl WindowLabel {
    /// Compact human-readable form, e.g. `fixed/day`, `sliding/144/72`,
    /// or `sliding-time/86400/43200`.
    pub fn label(&self) -> String {
        match self {
            WindowLabel::FixedCalendar { granularity } => format!("fixed/{granularity}"),
            WindowLabel::SlidingBlocks { size, step } => format!("sliding/{size}/{step}"),
            WindowLabel::SlidingTime {
                duration_secs,
                step_secs,
            } => format!("sliding-time/{duration_secs}/{step_secs}"),
        }
    }
}

/// A complete measurement run: metric × windowing × block stream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeasurementSeries {
    /// Which metric was computed.
    pub metric: MetricKind,
    /// How windows were formed.
    pub window: WindowLabel,
    /// Per-window results, in window order.
    pub points: Vec<MeasurementPoint>,
}

impl MeasurementSeries {
    /// Just the metric values, in window order.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.value).collect()
    }

    /// Arithmetic mean of the values; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|p| p.value).sum::<f64>() / self.points.len() as f64)
    }

    /// Smallest value with its window index; `None` when empty.
    pub fn min(&self) -> Option<(i64, f64)> {
        self.points
            .iter()
            .min_by(|a, b| a.value.total_cmp(&b.value))
            .map(|p| (p.index, p.value))
    }

    /// Largest value with its window index; `None` when empty.
    pub fn max(&self) -> Option<(i64, f64)> {
        self.points
            .iter()
            .max_by(|a, b| a.value.total_cmp(&b.value))
            .map(|p| (p.index, p.value))
    }

    /// Render as CSV with a header row. Columns match the per-point
    /// fields; `value` is printed with full precision.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "index,start_height,end_height,start_time,end_time,blocks,producers,value\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                p.index,
                p.start_height,
                p.end_height,
                p.start_time.secs(),
                p.end_time.secs(),
                p.blocks,
                p.producers,
                p.value
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> MeasurementSeries {
        MeasurementSeries {
            metric: MetricKind::Gini,
            window: WindowLabel::FixedCalendar {
                granularity: "day".into(),
            },
            points: values
                .iter()
                .enumerate()
                .map(|(i, &v)| MeasurementPoint {
                    index: i as i64,
                    start_height: i as u64 * 10,
                    end_height: i as u64 * 10 + 9,
                    start_time: Timestamp(i as i64 * 100),
                    end_time: Timestamp(i as i64 * 100 + 99),
                    blocks: 10,
                    producers: 3,
                    value: v,
                })
                .collect(),
        }
    }

    #[test]
    fn stats() {
        let s = series(&[0.5, 0.7, 0.3]);
        assert_eq!(s.values(), vec![0.5, 0.7, 0.3]);
        assert!((s.mean().unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(s.min().unwrap(), (2, 0.3));
        assert_eq!(s.max().unwrap(), (1, 0.7));
    }

    #[test]
    fn empty_series() {
        let s = series(&[]);
        assert!(s.mean().is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn csv_shape() {
        let s = series(&[0.25]);
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("index,"));
        assert_eq!(lines[1], "0,0,9,0,99,10,3,0.25");
    }

    #[test]
    fn window_labels() {
        assert_eq!(
            WindowLabel::FixedCalendar {
                granularity: "week".into()
            }
            .label(),
            "fixed/week"
        );
        assert_eq!(
            WindowLabel::SlidingBlocks {
                size: 144,
                step: 72
            }
            .label(),
            "sliding/144/72"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let s = series(&[0.1, 0.2]);
        let json = serde_json::to_string(&s).unwrap();
        let back: MeasurementSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
