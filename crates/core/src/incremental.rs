//! Incrementally-maintained metrics over integer block counts.
//!
//! The sliding-window engine's default path rebuilds a weight vector per
//! emitted window — cheap because the paper emits at most ~1,500 windows
//! per configuration. This module is the *streaming* alternative (and the
//! subject of the `ablation_incremental` bench): a [`CountMultiset`] keeps
//! per-producer block counts plus enough aggregate state to answer all
//! three paper metrics after every single-block update:
//!
//! * **entropy** — maintains `Σ c·log2(c)` under `c → c±1` transitions,
//!   O(1) per update;
//! * **Gini** — walks the distinct count values (a `BTreeMap` keyed by
//!   count), O(D) per query with D = number of *distinct* counts, which is
//!   ≤ √(2·blocks) regardless of producer population;
//! * **Nakamoto** — walks distinct counts descending until the threshold
//!   share is reached, O(distinct counts above the cut).
//!
//! Counts are integers: this engine applies to the paper's per-address /
//! first-address attribution where every credit is a whole block. For
//! fractional attribution use the batch path.

use crate::metrics::NAKAMOTO_THRESHOLD;
use blockdec_chain::ProducerId;
use std::collections::BTreeMap;

/// Multiset of per-producer integer block counts with O(1)/O(log) updates
/// and fast metric queries.
#[derive(Clone, Debug, Default)]
pub struct CountMultiset {
    /// producer → its current count (absent = 0).
    per_producer: BTreeMap<ProducerId, u64>,
    /// count value → number of producers holding exactly that count.
    by_count: BTreeMap<u64, u64>,
    /// Total blocks (Σ counts).
    total: u64,
    /// Σ c·log2(c) over producers, maintained incrementally.
    sum_clog2c: f64,
}

fn clog2c(c: u64) -> f64 {
    if c == 0 {
        0.0
    } else {
        let c = c as f64;
        c * c.log2()
    }
}

impl CountMultiset {
    /// An empty multiset.
    pub fn new() -> CountMultiset {
        CountMultiset::default()
    }

    /// Number of producers with a positive count.
    pub fn producers(&self) -> usize {
        self.per_producer.len()
    }

    /// Total block count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Current count of one producer.
    pub fn count_of(&self, p: ProducerId) -> u64 {
        self.per_producer.get(&p).copied().unwrap_or(0)
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    fn bump_count_bucket(&mut self, value: u64, delta: i64) {
        if value == 0 {
            return;
        }
        let entry = self.by_count.entry(value).or_insert(0);
        let next = (*entry as i64) + delta;
        debug_assert!(next >= 0, "count bucket underflow at value {value}");
        if next <= 0 {
            self.by_count.remove(&value);
        } else {
            *entry = next as u64;
        }
    }

    /// Credit one block to a producer.
    pub fn add(&mut self, p: ProducerId) {
        self.add_n(p, 1);
    }

    /// Credit `n` blocks to a producer in one O(log) update — a
    /// multi-payout anomaly block moves a producer's bucket once instead
    /// of `n` times.
    pub fn add_n(&mut self, p: ProducerId, n: u64) {
        if n == 0 {
            return;
        }
        let c = self.per_producer.entry(p).or_insert(0);
        let old = *c;
        *c += n;
        let new = *c;
        self.bump_count_bucket(old, -1);
        self.bump_count_bucket(new, 1);
        self.total += n;
        self.sum_clog2c += clog2c(new) - clog2c(old);
    }

    /// Remove one previously-credited block from a producer.
    ///
    /// # Panics
    /// If the producer has no blocks to remove (debug builds assert; in
    /// release the call is a checked no-op returning `false`).
    pub fn remove(&mut self, p: ProducerId) -> bool {
        self.remove_n(p, 1)
    }

    /// Remove `n` previously-credited blocks from a producer in one
    /// O(log) update — the mirror of [`CountMultiset::add_n`]. Returns
    /// `true` when all `n` were present.
    ///
    /// # Panics
    /// If fewer than `n` blocks are held (debug builds assert; in release
    /// the count clamps at zero and the call returns `false`).
    pub fn remove_n(&mut self, p: ProducerId, n: u64) -> bool {
        if n == 0 {
            return true;
        }
        let Some(c) = self.per_producer.get_mut(&p) else {
            debug_assert!(false, "removing block from producer with zero count");
            return false;
        };
        let old = *c;
        debug_assert!(old >= n, "removing {n} blocks from a count of {old}");
        let taken = n.min(old);
        *c = old - taken;
        let new = *c;
        if new == 0 {
            self.per_producer.remove(&p);
        }
        self.bump_count_bucket(old, -1);
        self.bump_count_bucket(new, 1);
        self.total -= taken;
        self.sum_clog2c += clog2c(new) - clog2c(old);
        taken == n
    }

    /// Shannon entropy in bits (paper Eqs. 2–3), from the maintained
    /// aggregates: `log2(T) − Σ c·log2(c) / T`.
    pub fn entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let t = self.total as f64;
        (t.log2() - self.sum_clog2c / t).max(0.0)
    }

    /// Gini coefficient (paper Eq. 1) computed by walking distinct count
    /// values ascending.
    pub fn gini(&self) -> f64 {
        let n = self.per_producer.len();
        if n < 2 || self.total == 0 {
            return 0.0;
        }
        let n_f = n as f64;
        let total = self.total as f64;
        // Producers sorted ascending by count occupy consecutive ranks;
        // a value v held by m producers starting at 1-based rank r
        // contributes v · Σ_{i=r}^{r+m−1} (2i − n − 1).
        let mut rank: u64 = 1;
        let mut weighted = 0.0;
        for (&value, &mult) in &self.by_count {
            let m = mult as f64;
            let r = rank as f64;
            // Σ_{i=r}^{r+m−1} 2i = 2·(m·r + m(m−1)/2); minus m·(n+1).
            let coeff = 2.0 * (m * r + m * (m - 1.0) / 2.0) - m * (n_f + 1.0);
            weighted += value as f64 * coeff;
            rank += mult;
        }
        (weighted / (n_f * total)).clamp(0.0, 1.0)
    }

    /// Nakamoto coefficient (paper Eq. 4) at the standard 51% threshold.
    pub fn nakamoto(&self) -> usize {
        self.nakamoto_with_threshold(NAKAMOTO_THRESHOLD)
    }

    /// Nakamoto coefficient at an arbitrary threshold in (0, 1].
    pub fn nakamoto_with_threshold(&self, threshold: f64) -> usize {
        assert!(threshold > 0.0 && threshold <= 1.0);
        if self.total == 0 {
            return 0;
        }
        let target = threshold * self.total as f64;
        let mut cum = 0.0;
        let mut producers_used = 0usize;
        for (&value, &mult) in self.by_count.iter().rev() {
            // All `mult` producers at this count may be needed; take them
            // one "value" at a time.
            let v = value as f64;
            for _ in 0..mult {
                cum += v;
                producers_used += 1;
                if cum >= target - self.total as f64 * 1e-12 {
                    return producers_used;
                }
            }
        }
        self.per_producer.len()
    }

    /// Snapshot the counts as f64 weights — for cross-checking against
    /// the batch metrics.
    pub fn weight_vector(&self) -> Vec<f64> {
        self.per_producer.values().map(|&c| c as f64).collect()
    }
}

/// A fully-streaming sliding-window engine over *integer-credit* block
/// streams (the paper's per-address and first-address attribution modes).
///
/// Unlike [`crate::engine::MeasurementEngine`], which snapshots the
/// window's weight vector per emission, this engine answers each window
/// from the [`CountMultiset`]'s maintained aggregates: O(1) entropy,
/// O(distinct counts) Gini and Nakamoto. It is the subject of the
/// `ablation_incremental` bench and is equivalence-tested against the
/// batch engine.
///
/// Returns `None` from [`StreamingSlidingEngine::run`] when any credit is
/// non-integral (fall back to the batch engine there).
#[derive(Clone, Copy, Debug)]
pub struct StreamingSlidingEngine {
    metric: crate::metrics::MetricKind,
    spec: crate::windows::sliding::SlidingWindowSpec,
}

impl StreamingSlidingEngine {
    /// Engine for a metric over a sliding spec. Only the three paper
    /// metrics have streaming implementations.
    ///
    /// # Panics
    /// If `metric` is not Gini, ShannonEntropy, or Nakamoto.
    pub fn new(
        metric: crate::metrics::MetricKind,
        spec: crate::windows::sliding::SlidingWindowSpec,
    ) -> StreamingSlidingEngine {
        use crate::metrics::MetricKind;
        assert!(
            matches!(
                metric,
                MetricKind::Gini | MetricKind::ShannonEntropy | MetricKind::Nakamoto
            ),
            "no streaming implementation for {metric:?}"
        );
        StreamingSlidingEngine { metric, spec }
    }

    /// The push-driven counterpart for head-following ingestion: a
    /// [`crate::delta::MetricDeltaStream`] over the same metric and spec.
    /// Unlike `run`/`run_columns` (approximate to 1e-9 via the count
    /// multiset), the delta stream replays the batch engine's
    /// `ProducerDistribution` updates and is *bitwise* equal to it.
    pub fn delta_stream(&self) -> crate::delta::MetricDeltaStream {
        crate::delta::MetricDeltaStream::sliding(self.metric, self.spec)
    }

    fn value(&self, m: &CountMultiset) -> f64 {
        use crate::metrics::MetricKind;
        match self.metric {
            MetricKind::Gini => m.gini(),
            MetricKind::ShannonEntropy => m.entropy(),
            MetricKind::Nakamoto => m.nakamoto() as f64,
            _ => unreachable!("validated in new()"), // blockdec-lint: allow(panic) — new() rejects every other MetricKind up front
        }
    }

    /// Run over a block stream. `None` when a fractional credit is
    /// encountered (integer-credit streams only).
    ///
    /// Thin compatibility wrapper: converts to
    /// [`blockdec_chain::BlockColumns`] and delegates to
    /// [`StreamingSlidingEngine::run_columns`], the canonical path.
    pub fn run(
        &self,
        blocks: &[blockdec_chain::AttributedBlock],
    ) -> Option<crate::series::MeasurementSeries> {
        let cols = blockdec_chain::BlockColumns::from_blocks(blocks);
        self.run_columns(cols.as_slice())
    }

    /// Run over a columnar block stream, iterating the flat credit
    /// columns directly. `None` when a fractional credit is encountered
    /// (integer-credit streams only).
    pub fn run_columns(
        &self,
        cols: blockdec_chain::ColumnsSlice<'_>,
    ) -> Option<crate::series::MeasurementSeries> {
        use crate::series::{MeasurementPoint, MeasurementSeries, WindowLabel};

        let apply = |m: &mut CountMultiset, b: usize, add: bool| -> Option<()> {
            for (&producer, &weight) in cols.producers_of(b).iter().zip(cols.weights_of(b)) {
                if weight.fract() != 0.0 || weight < 0.0 {
                    return None;
                }
                // One bucket move per credit, however many blocks it pays.
                if add {
                    m.add_n(producer, weight as u64);
                } else {
                    m.remove_n(producer, weight as u64);
                }
            }
            Some(())
        };

        let mut points = Vec::with_capacity(self.spec.window_count(cols.len()));
        let mut m = CountMultiset::new();
        let mut prev: Option<std::ops::Range<usize>> = None;
        for (i, range) in self.spec.iter(cols.len()).enumerate() {
            match prev.take() {
                Some(p) if p.end > range.start => {
                    for b in p.start..range.start {
                        apply(&mut m, b, false)?;
                    }
                    for b in p.end..range.end {
                        apply(&mut m, b, true)?;
                    }
                }
                _ => {
                    m = CountMultiset::new();
                    for b in range.clone() {
                        apply(&mut m, b, true)?;
                    }
                }
            }
            points.push(MeasurementPoint {
                index: i as i64,
                start_height: cols.height(range.start),
                end_height: cols.height(range.end - 1),
                start_time: cols.timestamp(range.start),
                end_time: cols.timestamp(range.end - 1),
                blocks: range.len() as u64,
                producers: m.producers() as u64,
                value: self.value(&m),
            });
            prev = Some(range);
        }
        Some(MeasurementSeries {
            metric: self.metric,
            window: WindowLabel::SlidingBlocks {
                size: self.spec.size,
                step: self.spec.step,
            },
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{gini, nakamoto, shannon_entropy};

    fn p(i: u32) -> ProducerId {
        ProducerId(i)
    }

    fn filled(counts: &[(u32, u64)]) -> CountMultiset {
        let mut m = CountMultiset::new();
        for &(id, c) in counts {
            for _ in 0..c {
                m.add(p(id));
            }
        }
        m
    }

    #[test]
    fn add_remove_bookkeeping() {
        let mut m = CountMultiset::new();
        m.add(p(1));
        m.add(p(1));
        m.add(p(2));
        assert_eq!(m.total(), 3);
        assert_eq!(m.producers(), 2);
        assert_eq!(m.count_of(p(1)), 2);
        assert!(m.remove(p(1)));
        assert_eq!(m.count_of(p(1)), 1);
        assert!(m.remove(p(1)));
        assert_eq!(m.producers(), 1);
        assert_eq!(m.count_of(p(1)), 0);
        assert!(m.remove(p(2)));
        assert!(m.is_empty());
        assert!(m.entropy().abs() < 1e-12);
    }

    #[test]
    fn remove_from_absent_is_safe_noop_in_release() {
        // Only meaningful without debug assertions; under debug this is
        // covered by the should_panic test below.
        if !cfg!(debug_assertions) {
            let mut m = CountMultiset::new();
            assert!(!m.remove(p(9)));
            assert_eq!(m.total(), 0);
        }
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn remove_from_absent_panics_in_debug() {
        let mut m = CountMultiset::new();
        m.remove(p(9));
    }

    #[test]
    fn add_n_equals_repeated_add() {
        let mut bulk = CountMultiset::new();
        bulk.add_n(p(1), 7);
        bulk.add_n(p(2), 3);
        bulk.add_n(p(1), 0); // no-op
        let single = filled(&[(1, 7), (2, 3)]);
        assert_eq!(bulk.total(), single.total());
        assert_eq!(bulk.count_of(p(1)), 7);
        assert!((bulk.entropy() - single.entropy()).abs() < 1e-12);
        assert!((bulk.gini() - single.gini()).abs() < 1e-12);
        assert_eq!(bulk.nakamoto(), single.nakamoto());
    }

    #[test]
    fn remove_n_mirrors_add_n() {
        let mut m = CountMultiset::new();
        m.add_n(p(1), 30);
        m.add_n(p(2), 10);
        assert!(m.remove_n(p(1), 30));
        assert_eq!(m.producers(), 1);
        assert_eq!(m.count_of(p(1)), 0);
        assert!(m.remove_n(p(2), 0)); // no-op succeeds
        assert!(m.remove_n(p(2), 10));
        assert!(m.is_empty());
        assert!(m.entropy().abs() < 1e-12);
    }

    #[test]
    fn entropy_matches_batch() {
        let m = filled(&[(1, 10), (2, 5), (3, 5), (4, 1)]);
        let batch = shannon_entropy(&m.weight_vector());
        assert!(
            (m.entropy() - batch).abs() < 1e-9,
            "{} vs {batch}",
            m.entropy()
        );
    }

    #[test]
    fn gini_matches_batch() {
        let m = filled(&[(1, 10), (2, 5), (3, 5), (4, 1), (5, 1), (6, 2)]);
        let batch = gini(&m.weight_vector());
        assert!((m.gini() - batch).abs() < 1e-9, "{} vs {batch}", m.gini());
    }

    #[test]
    fn nakamoto_matches_batch() {
        let m = filled(&[(1, 17), (2, 13), (3, 12), (4, 11), (5, 9), (6, 38)]);
        assert_eq!(m.nakamoto(), nakamoto(&m.weight_vector()));
    }

    #[test]
    fn metrics_track_through_slides() {
        // Simulate a slide: add a skewed prefix, then remove it while
        // adding a uniform suffix; metrics must equal batch at each step.
        let mut m = CountMultiset::new();
        let mut log: Vec<ProducerId> = Vec::new();
        for i in 0..200u32 {
            let producer = p(i % 7);
            m.add(producer);
            log.push(producer);
        }
        for (i, &removed) in log.iter().enumerate().take(150) {
            m.remove(removed);
            m.add(p(7 + (i % 13) as u32));
            let w = m.weight_vector();
            assert!((m.entropy() - shannon_entropy(&w)).abs() < 1e-9);
            assert!((m.gini() - gini(&w)).abs() < 1e-9);
            assert_eq!(m.nakamoto(), nakamoto(&w));
        }
    }

    #[test]
    fn empty_metrics_are_degenerate() {
        let m = CountMultiset::new();
        assert_eq!(m.entropy(), 0.0);
        assert_eq!(m.gini(), 0.0);
        assert_eq!(m.nakamoto(), 0);
    }

    #[test]
    fn single_producer() {
        let m = filled(&[(1, 42)]);
        assert_eq!(m.entropy(), 0.0);
        assert_eq!(m.gini(), 0.0);
        assert_eq!(m.nakamoto(), 1);
    }

    #[test]
    fn uniform_many() {
        let m = filled(&(0..100u32).map(|i| (i, 1)).collect::<Vec<_>>());
        assert!((m.entropy() - (100f64).log2()).abs() < 1e-9);
        assert!(m.gini().abs() < 1e-12);
        assert_eq!(m.nakamoto(), 51);
    }

    mod streaming_engine {
        use super::*;
        use crate::engine::MeasurementEngine;
        use crate::metrics::MetricKind;
        use crate::windows::sliding::SlidingWindowSpec;
        use blockdec_chain::{AttributedBlock, Credit, Timestamp};

        fn stream(pattern: &[u32], n: usize) -> Vec<AttributedBlock> {
            (0..n)
                .map(|i| AttributedBlock {
                    height: i as u64,
                    timestamp: Timestamp(1_546_300_800 + i as i64 * 600),
                    credits: vec![Credit {
                        producer: p(pattern[i % pattern.len()]),
                        weight: 1.0,
                    }],
                })
                .collect()
        }

        #[test]
        fn matches_batch_engine_exactly() {
            let blocks = stream(&[0, 0, 1, 2, 3, 3, 3, 4], 300);
            let spec = SlidingWindowSpec::new(40, 15);
            for metric in [
                MetricKind::Gini,
                MetricKind::ShannonEntropy,
                MetricKind::Nakamoto,
            ] {
                let streaming = StreamingSlidingEngine::new(metric, spec)
                    .run(&blocks)
                    .expect("integer credits");
                let batch = MeasurementEngine::new(metric)
                    .sliding_spec(spec)
                    .run(&blocks);
                assert_eq!(streaming.points.len(), batch.points.len());
                for (s, b) in streaming.points.iter().zip(&batch.points) {
                    assert_eq!(s.index, b.index);
                    assert_eq!(s.blocks, b.blocks);
                    assert_eq!(s.producers, b.producers);
                    assert!(
                        (s.value - b.value).abs() < 1e-9,
                        "{metric:?} window {}: {} vs {}",
                        s.index,
                        s.value,
                        b.value
                    );
                }
            }
        }

        #[test]
        fn handles_multi_credit_blocks() {
            let mut blocks = stream(&[0, 1], 60);
            blocks[30].credits = (10..40)
                .map(|i| Credit {
                    producer: p(i),
                    weight: 1.0,
                })
                .collect();
            let spec = SlidingWindowSpec::new(20, 10);
            let streaming = StreamingSlidingEngine::new(MetricKind::ShannonEntropy, spec)
                .run(&blocks)
                .expect("integer credits");
            let batch = MeasurementEngine::new(MetricKind::ShannonEntropy)
                .sliding_spec(spec)
                .run(&blocks);
            for (s, b) in streaming.points.iter().zip(&batch.points) {
                assert!((s.value - b.value).abs() < 1e-9);
            }
        }

        #[test]
        fn rejects_fractional_credits() {
            let mut blocks = stream(&[0, 1], 30);
            blocks[5].credits[0].weight = 0.5;
            let spec = SlidingWindowSpec::new(10, 5);
            assert!(StreamingSlidingEngine::new(MetricKind::Gini, spec)
                .run(&blocks)
                .is_none());
        }

        #[test]
        #[should_panic(expected = "no streaming implementation")]
        fn unsupported_metric_panics() {
            StreamingSlidingEngine::new(MetricKind::Hhi, SlidingWindowSpec::new(10, 5));
        }
    }
}
