//! A small query language for ad-hoc exploration.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := select [ "where" pred ( "and" pred )* ]
//! select  := "top" INT "producers"
//!          | "producers"
//!          | "count"
//! pred    := "height" "between" INT "and" INT
//!          | "time" "between" TIME "and" TIME
//!          | "producer" "=" STRING
//!          | "credit" ">=" NUMBER          (block credits, e.g. 1 = full)
//!          | "tx" ">=" INT
//! TIME    := INT (unix seconds) | quoted timestamp ("2019-01-14", ISO, BigQuery)
//! STRING  := 'single' | "double" quoted
//! ```
//!
//! Examples:
//!
//! ```text
//! top 5 producers
//! count where height between 556459 and 557000
//! producers where time between "2019-01-14" and "2019-01-15"
//! count where producer = "F2Pool" and tx >= 1000
//! ```
//!
//! Producer names are resolved against the store's dictionary at parse
//! time, so a typo'd pool name is a parse error rather than an empty
//! result.

use crate::expr::Filter;
use crate::plan::Plan;
use blockdec_chain::ProducerRegistry;
use blockdec_ingest_free_timeparse::parse_timestamp;

/// Internal shim so the parser can parse the same timestamp formats the
/// ingest layer accepts without a crate dependency cycle: `blockdec-query`
/// must not depend on `blockdec-ingest` (which depends on nothing here,
/// but layering keeps ingest optional). The formats are small enough to
/// reimplement via `blockdec_chain::time`.
mod blockdec_ingest_free_timeparse {
    use blockdec_chain::time::days_from_civil;
    use blockdec_chain::Timestamp;

    /// Subset of the ingest timestamp formats: integer seconds,
    /// `YYYY-MM-DD`, and `YYYY-MM-DD[T ]HH:MM:SS` with optional `Z`/` UTC`.
    pub fn parse_timestamp(s: &str) -> Option<Timestamp> {
        let s = s.trim();
        if let Ok(n) = s.parse::<i64>() {
            return Some(Timestamp(n));
        }
        let bytes = s.as_bytes();
        if bytes.len() < 10 || bytes[4] != b'-' || bytes[7] != b'-' {
            return None;
        }
        let year: i32 = s.get(0..4)?.parse().ok()?;
        let month: u8 = s.get(5..7)?.parse().ok()?;
        let day: u8 = s.get(8..10)?.parse().ok()?;
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return None;
        }
        let midnight = days_from_civil(year, month, day) * 86_400;
        let rest = &s[10..];
        if rest.is_empty() {
            return Some(Timestamp(midnight));
        }
        let rest = rest.strip_prefix(['T', ' '])?;
        if rest.len() < 8 || rest.as_bytes()[2] != b':' || rest.as_bytes()[5] != b':' {
            return None;
        }
        let hour: i64 = rest.get(0..2)?.parse().ok()?;
        let min: i64 = rest.get(3..5)?.parse().ok()?;
        let sec: i64 = rest.get(6..8)?.parse().ok()?;
        if hour > 23 || min > 59 || sec > 60 {
            return None;
        }
        match &rest[8..] {
            "" | "Z" | " UTC" => Some(Timestamp(midnight + hour * 3600 + min * 60 + sec)),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Number(String),
    Str(String),
    Eq,
    Ge,
}

fn tokenize(input: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '=' => {
                chars.next();
                out.push(Token::Eq);
            }
            '>' => {
                chars.next();
                if chars.next() != Some('=') {
                    return Err("expected '=' after '>'".into());
                }
                out.push(Token::Ge);
            }
            '\'' | '"' => {
                let quote = c;
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some(ch) if ch == quote => break,
                        Some(ch) => s.push(ch),
                        None => return Err(format!("unterminated string {s:?}")),
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_ascii_digit() || ch == '.' || ch == '_' {
                        if ch != '_' {
                            s.push(ch);
                        }
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Number(s));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_alphanumeric() || ch == '_' {
                        s.push(ch);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Word(s.to_ascii_lowercase()));
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    registry: &'a ProducerRegistry,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_word(&mut self, word: &str) -> Result<(), String> {
        match self.next() {
            Some(Token::Word(w)) if w == word => Ok(()),
            other => Err(format!("expected {word:?}, found {other:?}")),
        }
    }

    fn expect_int(&mut self) -> Result<u64, String> {
        match self.next() {
            Some(Token::Number(n)) => n.parse().map_err(|e| format!("bad integer {n:?}: {e}")),
            other => Err(format!("expected an integer, found {other:?}")),
        }
    }

    fn expect_time(&mut self) -> Result<i64, String> {
        match self.next() {
            Some(Token::Number(n)) => n.parse().map_err(|e| format!("bad time {n:?}: {e}")),
            Some(Token::Str(s)) => parse_timestamp(&s)
                .map(|t| t.secs())
                .ok_or_else(|| format!("unparseable timestamp {s:?}")),
            other => Err(format!("expected a timestamp, found {other:?}")),
        }
    }

    fn parse_pred(&mut self) -> Result<Filter, String> {
        match self.next() {
            Some(Token::Word(w)) => match w.as_str() {
                "height" => {
                    self.expect_word("between")?;
                    let lo = self.expect_int()?;
                    self.expect_word("and")?;
                    let hi = self.expect_int()?;
                    if lo > hi {
                        return Err(format!("empty height range {lo}..{hi}"));
                    }
                    Ok(Filter::HeightBetween(lo, hi))
                }
                "time" => {
                    self.expect_word("between")?;
                    let lo = self.expect_time()?;
                    self.expect_word("and")?;
                    let hi = self.expect_time()?;
                    if lo > hi {
                        return Err(format!("empty time range {lo}..{hi}"));
                    }
                    Ok(Filter::TimeBetween(lo, hi))
                }
                "producer" => {
                    match self.next() {
                        Some(Token::Eq) => {}
                        other => return Err(format!("expected '=', found {other:?}")),
                    }
                    let name = match self.next() {
                        Some(Token::Str(s)) => s,
                        other => return Err(format!("expected a quoted name, found {other:?}")),
                    };
                    let id = self
                        .registry
                        .get(&name)
                        .ok_or_else(|| format!("unknown producer {name:?}"))?;
                    Ok(Filter::ProducerIs(id.0))
                }
                "credit" => {
                    match self.next() {
                        Some(Token::Ge) => {}
                        other => return Err(format!("expected '>=', found {other:?}")),
                    }
                    let v = match self.next() {
                        Some(Token::Number(n)) => n
                            .parse::<f64>()
                            .map_err(|e| format!("bad credit {n:?}: {e}"))?,
                        other => return Err(format!("expected a number, found {other:?}")),
                    };
                    Ok(Filter::CreditAtLeast((v * 1000.0).round() as u32))
                }
                "tx" => {
                    match self.next() {
                        Some(Token::Ge) => {}
                        other => return Err(format!("expected '>=', found {other:?}")),
                    }
                    Ok(Filter::TxCountAtLeast(self.expect_int()? as u32))
                }
                other => Err(format!("unknown predicate {other:?}")),
            },
            other => Err(format!("expected a predicate, found {other:?}")),
        }
    }

    fn parse_query(&mut self) -> Result<Plan, String> {
        let plan_kind = match self.next() {
            Some(Token::Word(w)) if w == "top" => {
                let k = self.expect_int()? as usize;
                if k == 0 {
                    return Err("top 0 selects nothing".into());
                }
                self.expect_word("producers")?;
                ("top", k)
            }
            Some(Token::Word(w)) if w == "producers" => ("producers", usize::MAX),
            Some(Token::Word(w)) if w == "count" => ("count", 0),
            other => return Err(format!("expected top/producers/count, found {other:?}")),
        };

        let mut filter = Filter::True;
        if let Some(Token::Word(w)) = self.peek() {
            if w == "where" {
                self.next();
                filter = self.parse_pred()?;
                while let Some(Token::Word(w)) = self.peek() {
                    if w != "and" {
                        break;
                    }
                    self.next();
                    filter = filter.and(self.parse_pred()?);
                }
            }
        }
        if let Some(extra) = self.peek() {
            return Err(format!("trailing input at {extra:?}"));
        }
        Ok(match plan_kind {
            ("top", k) => Plan::top_k(filter, k),
            ("producers", _) => Plan::producers(filter),
            _ => Plan::count(filter),
        })
    }
}

/// Parse a query string into a [`Plan`], resolving producer names against
/// the store's registry.
pub fn parse_query(input: &str, registry: &ProducerRegistry) -> Result<Plan, String> {
    let tokens = tokenize(input)?;
    if tokens.is_empty() {
        return Err("empty query".into());
    }
    Parser {
        tokens,
        pos: 0,
        registry,
    }
    .parse_query()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Aggregation;

    fn registry() -> ProducerRegistry {
        let mut r = ProducerRegistry::new();
        r.intern("F2Pool");
        r.intern("AntPool");
        r
    }

    #[test]
    fn parses_top_k() {
        let plan = parse_query("top 5 producers", &registry()).unwrap();
        assert_eq!(plan.aggregation, Aggregation::TopProducers { k: 5 });
        assert_eq!(plan.filter, Filter::True);
    }

    #[test]
    fn parses_count_with_height_range() {
        let plan = parse_query("count where height between 100 and 200", &registry()).unwrap();
        assert_eq!(plan.aggregation, Aggregation::TotalBlocks);
        assert_eq!(plan.filter, Filter::HeightBetween(100, 200));
    }

    #[test]
    fn parses_conjunctions() {
        let plan = parse_query(
            "producers where height between 1 and 9 and tx >= 100 and credit >= 0.5",
            &registry(),
        )
        .unwrap();
        assert_eq!(
            plan.filter,
            Filter::And(vec![
                Filter::HeightBetween(1, 9),
                Filter::TxCountAtLeast(100),
                Filter::CreditAtLeast(500),
            ])
        );
    }

    #[test]
    fn parses_time_range_with_dates() {
        let plan = parse_query(
            "count where time between \"2019-01-14\" and '2019-01-15'",
            &registry(),
        )
        .unwrap();
        let jan14 = 1_546_300_800 + 13 * 86_400;
        assert_eq!(plan.filter, Filter::TimeBetween(jan14, jan14 + 86_400));
    }

    #[test]
    fn resolves_producer_names() {
        let plan = parse_query("count where producer = \"AntPool\"", &registry()).unwrap();
        assert_eq!(plan.filter, Filter::ProducerIs(1));
        let err = parse_query("count where producer = 'NoSuchPool'", &registry()).unwrap_err();
        assert!(err.contains("unknown producer"), "{err}");
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let plan = parse_query("TOP 3 Producers WHERE Height BETWEEN 1 AND 2", &registry());
        assert!(plan.is_ok(), "{plan:?}");
    }

    #[test]
    fn numbers_allow_underscores() {
        let plan = parse_query(
            "count where height between 556_459 and 610_690",
            &registry(),
        )
        .unwrap();
        assert_eq!(plan.filter, Filter::HeightBetween(556_459, 610_690));
    }

    #[test]
    fn rejects_malformed_queries() {
        let r = registry();
        for q in [
            "",
            "select stuff",
            "top producers",
            "top 0 producers",
            "count where",
            "count where height between 5 and",
            "count where height between 9 and 5",
            "count where producer = unquoted",
            "count where time between 'nonsense' and '2019-01-02'",
            "top 5 producers garbage",
            "count where tx > 5",
        ] {
            assert!(parse_query(q, &r).is_err(), "accepted {q:?}");
        }
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(parse_query("count where producer = 'oops", &registry()).is_err());
    }
}
