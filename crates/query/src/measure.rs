//! Memory-bounded measurement straight off the store.
//!
//! The in-memory engine materializes every attributed block before
//! windowing — fine for one chain-year, but a store can hold many. This
//! module computes *fixed calendar* measurements in a single visitor
//! scan: per-bucket producer distributions accumulate as rows stream by
//! (segment by segment), so peak memory is one decoded segment plus the
//! per-bucket aggregates, independent of total store size.

use crate::expr::Filter;
use blockdec_chain::{Granularity, ProducerId, Timestamp};
use blockdec_core::distribution::ProducerDistribution;
use blockdec_core::metrics::MetricKind;
use blockdec_core::series::{MeasurementPoint, MeasurementSeries, WindowLabel};
use blockdec_store::error::Result;
use blockdec_store::BlockStore;
use std::collections::BTreeMap;

struct BucketAcc {
    dist: ProducerDistribution,
    blocks: u64,
    last_height: Option<u64>,
    start_height: u64,
    end_height: u64,
    start_time: i64,
    end_time: i64,
}

impl BucketAcc {
    fn new() -> BucketAcc {
        BucketAcc {
            dist: ProducerDistribution::new(),
            blocks: 0,
            last_height: None,
            start_height: u64::MAX,
            end_height: 0,
            start_time: i64::MAX,
            end_time: i64::MIN,
        }
    }
}

/// Fixed-calendar measurement computed in one streaming scan of the
/// store. Equivalent to scanning into memory and running
/// `MeasurementEngine::fixed_calendar`, but with O(segment) memory.
pub fn measure_fixed_streaming(
    store: &BlockStore,
    filter: &Filter,
    metric: MetricKind,
    granularity: Granularity,
    origin: Timestamp,
) -> Result<MeasurementSeries> {
    let mut series = measure_fixed_streaming_matrix(store, filter, &[metric], granularity, origin)?;
    Ok(series.pop().expect("one metric in, one series out")) // blockdec-lint: allow(panic) — the matrix call returns exactly one series per requested metric
}

/// Planner-style multi-metric variant of [`measure_fixed_streaming`]:
/// every requested metric is answered from **one** store scan and, per
/// bucket, one sorted scratch fill — the store-backed analogue of
/// [`blockdec_core::planner::MatrixPlan`] for a single fixed-calendar
/// window spec. Returns one series per metric, in input order (duplicate
/// metrics each get their own series).
pub fn measure_fixed_streaming_matrix(
    store: &BlockStore,
    filter: &Filter,
    metrics: &[MetricKind],
    granularity: Granularity,
    origin: Timestamp,
) -> Result<Vec<MeasurementSeries>> {
    let (pred, residual) = filter.compile();
    let mut buckets: BTreeMap<i64, BucketAcc> = BTreeMap::new();
    store.scan_for_each(&pred, |row| {
        if !residual.matches(row) {
            return;
        }
        let bucket = Timestamp(row.timestamp).bucket(granularity, origin);
        let acc = buckets.entry(bucket).or_insert_with(BucketAcc::new);
        acc.dist.add(ProducerId(row.producer), row.credit());
        // Rows of one block share a height and arrive adjacently; count
        // blocks by height transitions within the bucket.
        if acc.last_height != Some(row.height) {
            acc.blocks += 1;
            acc.last_height = Some(row.height);
        }
        acc.start_height = acc.start_height.min(row.height);
        acc.end_height = acc.end_height.max(row.height);
        acc.start_time = acc.start_time.min(row.timestamp);
        acc.end_time = acc.end_time.max(row.timestamp);
    })?;

    let mut per_metric: Vec<Vec<MeasurementPoint>> = metrics
        .iter()
        .map(|_| Vec::with_capacity(buckets.len()))
        .collect();
    let mut scratch = Vec::new();
    for (&bucket, acc) in &buckets {
        acc.dist.sorted_weights_into(&mut scratch);
        for (slot, &metric) in metrics.iter().enumerate() {
            per_metric[slot].push(MeasurementPoint {
                index: bucket,
                start_height: acc.start_height,
                end_height: acc.end_height,
                start_time: Timestamp(acc.start_time),
                end_time: Timestamp(acc.end_time),
                blocks: acc.blocks,
                producers: acc.dist.producers() as u64,
                value: metric.compute_sorted(&scratch),
            });
        }
    }
    Ok(metrics
        .iter()
        .zip(per_metric)
        .map(|(&metric, points)| MeasurementSeries {
            metric,
            window: WindowLabel::FixedCalendar {
                granularity: granularity.label().to_string(),
            },
            points,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::MeasurementSource;
    use blockdec_core::engine::MeasurementEngine;
    use blockdec_sim::Scenario;

    fn test_store(tag: &str) -> (BlockStore, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "blockdec-measure-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = BlockStore::create(&dir).unwrap();
        let stream = Scenario::bitcoin_2019().truncated(10).generate();
        store
            .append_attributed(&stream.attributed, &stream.registry)
            .unwrap();
        store.flush().unwrap();
        (store, dir)
    }

    #[test]
    fn streaming_equals_materialized_engine() {
        let (store, dir) = test_store("equiv");
        let origin = Timestamp::year_2019_start();
        let blocks = store.attributed_blocks(&Filter::True).unwrap();
        for metric in MetricKind::PAPER {
            for g in [Granularity::Day, Granularity::Week] {
                let streaming =
                    measure_fixed_streaming(&store, &Filter::True, metric, g, origin).unwrap();
                let engine = MeasurementEngine::new(metric)
                    .fixed_calendar(g, origin)
                    .run(&blocks);
                assert_eq!(streaming.points.len(), engine.points.len());
                for (s, e) in streaming.points.iter().zip(&engine.points) {
                    assert_eq!(s.index, e.index);
                    assert_eq!(s.blocks, e.blocks, "bucket {}", s.index);
                    assert_eq!(s.producers, e.producers, "bucket {}", s.index);
                    assert!(
                        (s.value - e.value).abs() < 1e-9,
                        "{metric:?}/{} bucket {}: {} vs {}",
                        g.label(),
                        s.index,
                        s.value,
                        e.value
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn matrix_scan_equals_per_metric_scans() {
        let (store, dir) = test_store("matrix");
        let origin = Timestamp::year_2019_start();
        let metrics = [
            MetricKind::Gini,
            MetricKind::ShannonEntropy,
            MetricKind::Nakamoto,
        ];
        let combined = measure_fixed_streaming_matrix(
            &store,
            &Filter::True,
            &metrics,
            Granularity::Day,
            origin,
        )
        .unwrap();
        assert_eq!(combined.len(), 3);
        for (&metric, series) in metrics.iter().zip(&combined) {
            let single =
                measure_fixed_streaming(&store, &Filter::True, metric, Granularity::Day, origin)
                    .unwrap();
            assert_eq!(series, &single, "{metric:?}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn filter_restricts_streaming_measurement() {
        let (store, dir) = test_store("filter");
        let origin = Timestamp::year_2019_start();
        let day3 = origin.secs() + 3 * 86_400;
        let filter = Filter::TimeBetween(day3, day3 + 86_400 - 1);
        let series =
            measure_fixed_streaming(&store, &filter, MetricKind::Gini, Granularity::Day, origin)
                .unwrap();
        assert_eq!(series.points.len(), 1);
        assert_eq!(series.points[0].index, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_yields_empty_series() {
        let dir =
            std::env::temp_dir().join(format!("blockdec-measure-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = BlockStore::create(&dir).unwrap();
        let series = measure_fixed_streaming(
            &store,
            &Filter::True,
            MetricKind::Gini,
            Granularity::Day,
            Timestamp::year_2019_start(),
        )
        .unwrap();
        assert!(series.points.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
