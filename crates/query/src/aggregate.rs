//! Group-by-producer aggregation — the paper's core query shape.
//!
//! Everything the measurement pipeline computes starts from "how many
//! blocks did each producer create inside this window", i.e.
//! `SELECT producer, SUM(credit) GROUP BY producer` over a height/time
//! range. [`producer_block_counts`] is exactly that; [`top_producers`]
//! adds the share ranking behind Fig. 7.

use crate::expr::Filter;
use blockdec_store::error::Result;
use blockdec_store::BlockStore;
use std::collections::BTreeMap;

/// One producer's aggregate within a query range.
#[derive(Clone, Debug, PartialEq)]
pub struct ProducerAgg {
    /// Store dictionary id.
    pub producer: u32,
    /// Display name.
    pub name: String,
    /// Credit-weighted block count.
    pub blocks: f64,
    /// Share of total credits in the range.
    pub share: f64,
}

/// Credit-weighted block counts per producer id, in id order.
pub fn producer_block_counts(store: &BlockStore, filter: &Filter) -> Result<Vec<(u32, f64)>> {
    let (pred, residual) = filter.compile();
    let rows = store.scan(&pred)?;
    let mut counts: BTreeMap<u32, f64> = BTreeMap::new();
    for r in rows.iter().filter(|r| residual.matches(r)) {
        *counts.entry(r.producer).or_insert(0.0) += r.credit();
    }
    Ok(counts.into_iter().collect())
}

/// Top-`k` producers by credit within the range, with names and shares.
/// `k = usize::MAX` ranks everyone.
pub fn top_producers(store: &BlockStore, filter: &Filter, k: usize) -> Result<Vec<ProducerAgg>> {
    let counts = producer_block_counts(store, filter)?;
    let total: f64 = counts.iter().map(|(_, c)| c).sum();
    let mut aggs: Vec<ProducerAgg> = counts
        .into_iter()
        .map(|(producer, blocks)| ProducerAgg {
            producer,
            name: store
                .registry()
                .name(blockdec_chain::ProducerId(producer))
                .unwrap_or("<unknown>")
                .to_string(),
            blocks,
            share: if total > 0.0 { blocks / total } else { 0.0 },
        })
        .collect();
    aggs.sort_by(|a, b| {
        b.blocks
            .total_cmp(&a.blocks)
            .then(a.producer.cmp(&b.producer))
    });
    aggs.truncate(k);
    Ok(aggs)
}

/// Total credit-weighted blocks within the range.
pub fn total_blocks(store: &BlockStore, filter: &Filter) -> Result<f64> {
    Ok(producer_block_counts(store, filter)?
        .iter()
        .map(|(_, c)| c)
        .sum())
}

/// Number of distinct producers within the range.
pub fn distinct_producers(store: &BlockStore, filter: &Filter) -> Result<usize> {
    Ok(producer_block_counts(store, filter)?.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdec_store::RowRecord;

    fn test_store(tag: &str) -> (BlockStore, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "blockdec-query-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = BlockStore::create(&dir).unwrap();
        // 100 blocks: A gets even heights, B gets odd multiples of 3... a
        // deterministic mix, plus one half-credit row for C.
        let a = store.intern_producer("A");
        let b = store.intern_producer("B");
        let c = store.intern_producer("C");
        let mut rows = Vec::new();
        for h in 0..100u64 {
            let producer = if h % 2 == 0 { a } else { b };
            rows.push(RowRecord {
                height: h,
                timestamp: 1000 + h as i64 * 10,
                producer,
                credit_millis: 1000,
                tx_count: (h % 7) as u32,
                size_bytes: 0,
                difficulty: 0,
            });
        }
        rows.push(RowRecord {
            height: 100,
            timestamp: 2000,
            producer: c,
            credit_millis: 500,
            tx_count: 0,
            size_bytes: 0,
            difficulty: 0,
        });
        store.append_rows(&rows).unwrap();
        store.flush().unwrap();
        (store, dir)
    }

    #[test]
    fn counts_group_by_producer() {
        let (store, dir) = test_store("counts");
        let counts = producer_block_counts(&store, &Filter::True).unwrap();
        assert_eq!(counts.len(), 3);
        assert_eq!(counts[0], (0, 50.0));
        assert_eq!(counts[1], (1, 50.0));
        assert!((counts[2].1 - 0.5).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn filter_restricts_range() {
        let (store, dir) = test_store("range");
        let counts = producer_block_counts(&store, &Filter::HeightBetween(0, 9)).unwrap();
        assert_eq!(counts, vec![(0, 5.0), (1, 5.0)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn residual_filters_apply() {
        let (store, dir) = test_store("residual");
        // Only full-credit rows.
        let total = total_blocks(&store, &Filter::CreditAtLeast(1000)).unwrap();
        assert!((total - 100.0).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn top_producers_ranked_with_shares() {
        let (store, dir) = test_store("topk");
        let top = top_producers(&store, &Filter::True, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].name, "A");
        assert_eq!(top[1].name, "B");
        let expected_share = 50.0 / 100.5;
        assert!((top[0].share - expected_share).abs() < 1e-9);
        // Tie between A and B broken by producer id.
        assert!(top[0].producer < top[1].producer);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn distinct_and_total() {
        let (store, dir) = test_store("distinct");
        assert_eq!(distinct_producers(&store, &Filter::True).unwrap(), 3);
        let t = total_blocks(&store, &Filter::True).unwrap();
        assert!((t - 100.5).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_range() {
        let (store, dir) = test_store("empty");
        let counts = producer_block_counts(&store, &Filter::HeightBetween(500, 600)).unwrap();
        assert!(counts.is_empty());
        assert_eq!(
            total_blocks(&store, &Filter::HeightBetween(500, 600)).unwrap(),
            0.0
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
