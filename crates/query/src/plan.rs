//! A small logical plan and executor.
//!
//! The CLI's ad-hoc queries compose into a [`Plan`]: filter → aggregate →
//! (optionally) top-k. Executing a plan against a store produces a
//! [`QueryOutput`] table that renders to CSV. This is deliberately tiny —
//! the measurement pipeline does not need joins or expressions beyond
//! conjunctive range filters — but it keeps the CLI declarative and
//! testable.

use crate::aggregate::{top_producers, total_blocks};
use crate::expr::Filter;
use blockdec_store::error::Result;
use blockdec_store::BlockStore;

/// What to compute over the filtered rows.
#[derive(Clone, Debug, PartialEq)]
pub enum Aggregation {
    /// Per-producer block counts and shares, ranked, optionally truncated.
    TopProducers {
        /// Keep this many producers (`usize::MAX` = all).
        k: usize,
    },
    /// A single total-blocks row.
    TotalBlocks,
}

/// A logical query plan.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// Row filter (with pushdown on execution).
    pub filter: Filter,
    /// Aggregation to apply.
    pub aggregation: Aggregation,
}

impl Plan {
    /// Rank all producers within a filter.
    pub fn producers(filter: Filter) -> Plan {
        Plan {
            filter,
            aggregation: Aggregation::TopProducers { k: usize::MAX },
        }
    }

    /// Rank the top `k` producers within a filter.
    pub fn top_k(filter: Filter, k: usize) -> Plan {
        Plan {
            filter,
            aggregation: Aggregation::TopProducers { k },
        }
    }

    /// Count blocks within a filter.
    pub fn count(filter: Filter) -> Plan {
        Plan {
            filter,
            aggregation: Aggregation::TotalBlocks,
        }
    }

    /// Execute against a store.
    pub fn execute(&self, store: &BlockStore) -> Result<QueryOutput> {
        match &self.aggregation {
            Aggregation::TopProducers { k } => {
                let aggs = top_producers(store, &self.filter, *k)?;
                Ok(QueryOutput {
                    columns: vec!["producer".into(), "blocks".into(), "share".into()],
                    rows: aggs
                        .into_iter()
                        .map(|a| vec![a.name, format!("{}", a.blocks), format!("{:.6}", a.share)])
                        .collect(),
                })
            }
            Aggregation::TotalBlocks => {
                let total = total_blocks(store, &self.filter)?;
                Ok(QueryOutput {
                    columns: vec!["blocks".into()],
                    rows: vec![vec![format!("{total}")]],
                })
            }
        }
    }
}

/// A small result table.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutput {
    /// Column headers.
    pub columns: Vec<String>,
    /// Row values as strings.
    pub rows: Vec<Vec<String>>,
}

impl QueryOutput {
    /// Render as CSV (header + rows). Values containing commas or quotes
    /// are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| field(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|v| field(v)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdec_store::RowRecord;

    fn test_store(tag: &str) -> (BlockStore, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "blockdec-plan-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = BlockStore::create(&dir).unwrap();
        let big = store.intern_producer("BigPool");
        let small = store.intern_producer("small,miner"); // comma: CSV quoting
        let rows: Vec<RowRecord> = (0..10u64)
            .map(|h| RowRecord {
                height: h,
                timestamp: h as i64,
                producer: if h < 7 { big } else { small },
                credit_millis: 1000,
                tx_count: 0,
                size_bytes: 0,
                difficulty: 0,
            })
            .collect();
        store.append_rows(&rows).unwrap();
        store.flush().unwrap();
        (store, dir)
    }

    #[test]
    fn top_producers_plan() {
        let (store, dir) = test_store("top");
        let out = Plan::producers(Filter::True).execute(&store).unwrap();
        assert_eq!(out.columns, vec!["producer", "blocks", "share"]);
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0][0], "BigPool");
        assert_eq!(out.rows[0][1], "7");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn top_k_truncates() {
        let (store, dir) = test_store("topk");
        let out = Plan::top_k(Filter::True, 1).execute(&store).unwrap();
        assert_eq!(out.rows.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn count_plan() {
        let (store, dir) = test_store("count");
        let out = Plan::count(Filter::HeightBetween(0, 4))
            .execute(&store)
            .unwrap();
        assert_eq!(out.rows, vec![vec!["5".to_string()]]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_quotes_special_fields() {
        let (store, dir) = test_store("csv");
        let out = Plan::producers(Filter::True).execute(&store).unwrap();
        let csv = out.to_csv();
        assert!(csv.contains("\"small,miner\""), "{csv}");
        assert!(csv.starts_with("producer,blocks,share\n"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
