//! Feeding the measurement engine from different sources.
//!
//! The window engines in `blockdec-core` consume `&[AttributedBlock]`.
//! [`MeasurementSource`] abstracts where those come from: an in-memory
//! simulated stream or a [`BlockStore`] range scan. This is the seam the
//! examples and CLI use to run identical measurements over either.

use crate::expr::Filter;
use blockdec_chain::{AttributedBlock, BlockColumns};
use blockdec_store::error::Result;
use blockdec_store::{BlockStore, RowRecord};

/// Anything that can produce an attributed block stream for measurement.
pub trait MeasurementSource {
    /// Height-ordered attributed blocks matching the filter.
    fn attributed_blocks(&self, filter: &Filter) -> Result<Vec<AttributedBlock>>;

    /// Height-ordered columnar blocks matching the filter. The default
    /// converts the AoS stream; sources with a native columnar path (the
    /// store) override it to skip AoS materialization entirely.
    fn block_columns(&self, filter: &Filter) -> Result<BlockColumns> {
        Ok(BlockColumns::from_blocks(&self.attributed_blocks(filter)?))
    }
}

impl MeasurementSource for BlockStore {
    fn attributed_blocks(&self, filter: &Filter) -> Result<Vec<AttributedBlock>> {
        // One streaming columnar scan, then a single AoS materialization
        // at the edge — no intermediate Vec<RowRecord>.
        Ok(self.block_columns(filter)?.to_blocks())
    }

    fn block_columns(&self, filter: &Filter) -> Result<BlockColumns> {
        let (pred, residual) = filter.compile();
        self.scan_columnar_filtered(&pred, |r| residual.matches(r))
    }
}

impl MeasurementSource for Vec<AttributedBlock> {
    fn attributed_blocks(&self, filter: &Filter) -> Result<Vec<AttributedBlock>> {
        // In-memory sources filter blocks whole: a block matches when any
        // of its rows would.
        Ok(self
            .iter()
            .filter(|b| block_matches(b, filter))
            .cloned()
            .collect())
    }

    fn block_columns(&self, filter: &Filter) -> Result<BlockColumns> {
        // Push matching blocks straight into columns — no cloned credit
        // Vecs along the way.
        let mut cols = BlockColumns::new();
        for b in self.iter().filter(|b| block_matches(b, filter)) {
            cols.push_attributed(b);
        }
        Ok(cols)
    }
}

/// Whole-block filter semantics for in-memory sources: a block matches
/// when any of its credit rows would.
fn block_matches(b: &AttributedBlock, filter: &Filter) -> bool {
    b.credits.iter().any(|c| {
        filter.matches(&RowRecord {
            height: b.height,
            timestamp: b.timestamp.secs(),
            producer: c.producer.0,
            credit_millis: blockdec_store::row::weight_to_millis(c.weight),
            tx_count: 0,
            size_bytes: 0,
            difficulty: 0,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdec_chain::{Credit, ProducerId, ProducerRegistry, Timestamp};

    fn ab(height: u64, producers: &[u32]) -> AttributedBlock {
        AttributedBlock {
            height,
            timestamp: Timestamp(height as i64 * 100),
            credits: producers
                .iter()
                .map(|&p| Credit {
                    producer: ProducerId(p),
                    weight: 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn vec_source_filters_by_height() {
        let blocks = vec![ab(1, &[0]), ab(2, &[1]), ab(3, &[0])];
        let got = blocks
            .attributed_blocks(&Filter::HeightBetween(2, 3))
            .unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].height, 2);
    }

    #[test]
    fn store_source_matches_vec_source() {
        let dir = std::env::temp_dir().join(format!(
            "blockdec-stream-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = BlockStore::create(&dir).unwrap();

        let mut reg = ProducerRegistry::new();
        reg.intern("P0");
        reg.intern("P1");
        reg.intern("P2");
        let blocks = vec![
            ab(10, &[0]),
            ab(11, &[1, 2]), // multi-credit block
            ab(12, &[0]),
            ab(13, &[2]),
        ];
        store.append_attributed(&blocks, &reg).unwrap();
        store.flush().unwrap();

        let filter = Filter::HeightBetween(10, 12);
        let from_store = store.attributed_blocks(&filter).unwrap();
        let from_vec = blocks.attributed_blocks(&filter).unwrap();
        assert_eq!(from_store.len(), from_vec.len());
        for (a, b) in from_store.iter().zip(&from_vec) {
            assert_eq!(a.height, b.height);
            assert_eq!(a.credits.len(), b.credits.len());
        }
        // Multi-credit block regrouped.
        assert_eq!(from_store[1].credits.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn columns_agree_with_attributed_blocks_for_both_sources() {
        let dir = std::env::temp_dir().join(format!(
            "blockdec-stream-cols-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = BlockStore::create(&dir).unwrap();
        let mut reg = ProducerRegistry::new();
        for p in ["P0", "P1", "P2"] {
            reg.intern(p);
        }
        let blocks = vec![ab(10, &[0]), ab(11, &[1, 2]), ab(12, &[0]), ab(13, &[2])];
        store.append_attributed(&blocks, &reg).unwrap();
        store.flush().unwrap();

        for filter in [Filter::True, Filter::HeightBetween(11, 12)] {
            let store_cols = store.block_columns(&filter).unwrap();
            store_cols.validate().unwrap();
            assert_eq!(
                store_cols.to_blocks(),
                store.attributed_blocks(&filter).unwrap()
            );
            let vec_cols = blocks.block_columns(&filter).unwrap();
            vec_cols.validate().unwrap();
            assert_eq!(
                vec_cols.to_blocks(),
                blocks.attributed_blocks(&filter).unwrap()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_filter_result() {
        let blocks = vec![ab(1, &[0])];
        assert!(blocks
            .attributed_blocks(&Filter::HeightBetween(5, 9))
            .unwrap()
            .is_empty());
    }
}
