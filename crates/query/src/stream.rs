//! Feeding the measurement engine from different sources.
//!
//! The window engines in `blockdec-core` consume `&[AttributedBlock]`.
//! [`MeasurementSource`] abstracts where those come from: an in-memory
//! simulated stream or a [`BlockStore`] range scan. This is the seam the
//! examples and CLI use to run identical measurements over either.

use crate::expr::Filter;
use blockdec_chain::AttributedBlock;
use blockdec_store::error::Result;
use blockdec_store::{BlockStore, RowRecord};

/// Anything that can produce an attributed block stream for measurement.
pub trait MeasurementSource {
    /// Height-ordered attributed blocks matching the filter.
    fn attributed_blocks(&self, filter: &Filter) -> Result<Vec<AttributedBlock>>;
}

impl MeasurementSource for BlockStore {
    fn attributed_blocks(&self, filter: &Filter) -> Result<Vec<AttributedBlock>> {
        let (pred, residual) = filter.compile();
        let rows = self.scan(&pred)?;
        let kept: Vec<RowRecord> = rows.into_iter().filter(|r| residual.matches(r)).collect();
        // Regroup rows by height into attribution view.
        let mut out: Vec<AttributedBlock> = Vec::new();
        let mut i = 0;
        while i < kept.len() {
            let mut j = i + 1;
            while j < kept.len() && kept[j].height == kept[i].height {
                j += 1;
            }
            out.push(RowRecord::to_attributed(&kept[i..j]));
            i = j;
        }
        Ok(out)
    }
}

impl MeasurementSource for Vec<AttributedBlock> {
    fn attributed_blocks(&self, filter: &Filter) -> Result<Vec<AttributedBlock>> {
        // In-memory sources filter blocks whole: a block matches when any
        // of its rows would.
        Ok(self
            .iter()
            .filter(|b| {
                b.credits.iter().any(|c| {
                    filter.matches(&RowRecord {
                        height: b.height,
                        timestamp: b.timestamp.secs(),
                        producer: c.producer.0,
                        credit_millis: blockdec_store::row::weight_to_millis(c.weight),
                        tx_count: 0,
                        size_bytes: 0,
                        difficulty: 0,
                    })
                })
            })
            .cloned()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdec_chain::{Credit, ProducerId, ProducerRegistry, Timestamp};

    fn ab(height: u64, producers: &[u32]) -> AttributedBlock {
        AttributedBlock {
            height,
            timestamp: Timestamp(height as i64 * 100),
            credits: producers
                .iter()
                .map(|&p| Credit {
                    producer: ProducerId(p),
                    weight: 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn vec_source_filters_by_height() {
        let blocks = vec![ab(1, &[0]), ab(2, &[1]), ab(3, &[0])];
        let got = blocks
            .attributed_blocks(&Filter::HeightBetween(2, 3))
            .unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].height, 2);
    }

    #[test]
    fn store_source_matches_vec_source() {
        let dir = std::env::temp_dir().join(format!(
            "blockdec-stream-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = BlockStore::create(&dir).unwrap();

        let mut reg = ProducerRegistry::new();
        reg.intern("P0");
        reg.intern("P1");
        reg.intern("P2");
        let blocks = vec![
            ab(10, &[0]),
            ab(11, &[1, 2]), // multi-credit block
            ab(12, &[0]),
            ab(13, &[2]),
        ];
        store.append_attributed(&blocks, &reg).unwrap();
        store.flush().unwrap();

        let filter = Filter::HeightBetween(10, 12);
        let from_store = store.attributed_blocks(&filter).unwrap();
        let from_vec = blocks.attributed_blocks(&filter).unwrap();
        assert_eq!(from_store.len(), from_vec.len());
        for (a, b) in from_store.iter().zip(&from_vec) {
            assert_eq!(a.height, b.height);
            assert_eq!(a.credits.len(), b.credits.len());
        }
        // Multi-credit block regrouped.
        assert_eq!(from_store[1].credits.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_filter_result() {
        let blocks = vec![ab(1, &[0])];
        assert!(blocks
            .attributed_blocks(&Filter::HeightBetween(5, 9))
            .unwrap()
            .is_empty());
    }
}
