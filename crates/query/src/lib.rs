//! # blockdec-query
//!
//! Query layer over [`blockdec_store`]: predicate expressions with
//! pushdown, group-by-producer aggregation (the paper's core query —
//! "blocks per producer in a window"), top-k share summaries behind the
//! Fig. 7 pie charts, and a small logical plan / executor used by the
//! CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod expr;
pub mod measure;
pub mod parse;
pub mod plan;
pub mod stream;

pub use aggregate::{producer_block_counts, top_producers, ProducerAgg};
pub use expr::Filter;
pub use measure::{measure_fixed_streaming, measure_fixed_streaming_matrix};
pub use parse::parse_query;
pub use plan::{Plan, QueryOutput};
pub use stream::MeasurementSource;
