//! Filter expressions with store pushdown.
//!
//! A [`Filter`] is a small predicate AST. [`Filter::compile`] splits it
//! into the part the store can prune with zone maps ([`ScanPredicate`])
//! and a residual row-level closure for everything else. Conjunction is
//! the only combinator — the measurement workload never needs `OR`, and
//! keeping the AST conjunctive keeps pushdown exact.

use blockdec_store::{RowRecord, ScanPredicate};

/// A conjunctive filter over attribution rows.
#[derive(Clone, Debug, PartialEq)]
pub enum Filter {
    /// Accept everything.
    True,
    /// Height in `[lo, hi]`.
    HeightBetween(u64, u64),
    /// Timestamp in `[lo, hi]`.
    TimeBetween(i64, i64),
    /// Produced by the given producer id.
    ProducerIs(u32),
    /// Credit at least this many millis (e.g. 1000 = full blocks only).
    CreditAtLeast(u32),
    /// At least this many transactions.
    TxCountAtLeast(u32),
    /// All sub-filters hold.
    And(Vec<Filter>),
}

impl Filter {
    /// Conjoin two filters.
    pub fn and(self, other: Filter) -> Filter {
        match (self, other) {
            (Filter::True, f) | (f, Filter::True) => f,
            (Filter::And(mut a), Filter::And(b)) => {
                a.extend(b);
                Filter::And(a)
            }
            (Filter::And(mut a), f) => {
                a.push(f);
                Filter::And(a)
            }
            (f, Filter::And(mut b)) => {
                b.insert(0, f);
                Filter::And(b)
            }
            (a, b) => Filter::And(vec![a, b]),
        }
    }

    /// Row-level evaluation (ignores pushdown; used for residuals and
    /// tests).
    pub fn matches(&self, row: &RowRecord) -> bool {
        match self {
            Filter::True => true,
            Filter::HeightBetween(lo, hi) => (*lo..=*hi).contains(&row.height),
            Filter::TimeBetween(lo, hi) => (*lo..=*hi).contains(&row.timestamp),
            Filter::ProducerIs(p) => row.producer == *p,
            Filter::CreditAtLeast(c) => row.credit_millis >= *c,
            Filter::TxCountAtLeast(t) => row.tx_count >= *t,
            Filter::And(fs) => fs.iter().all(|f| f.matches(row)),
        }
    }

    /// Split into a store pushdown predicate plus a residual filter that
    /// must still be applied row-by-row. The pushdown intersects ranges
    /// from every conjunct it understands.
    pub fn compile(&self) -> (ScanPredicate, Filter) {
        let mut pred = ScanPredicate::all();
        let mut residual = Vec::new();
        self.push_into(&mut pred, &mut residual);
        let residual = match residual.len() {
            0 => Filter::True,
            1 => residual.swap_remove(0),
            _ => Filter::And(residual),
        };
        (pred, residual)
    }

    fn push_into(&self, pred: &mut ScanPredicate, residual: &mut Vec<Filter>) {
        match self {
            Filter::True => {}
            Filter::HeightBetween(lo, hi) => {
                let (plo, phi) = pred.heights.unwrap_or((u64::MIN, u64::MAX));
                pred.heights = Some((plo.max(*lo), phi.min(*hi)));
            }
            Filter::TimeBetween(lo, hi) => {
                let (plo, phi) = pred.times.unwrap_or((i64::MIN, i64::MAX));
                pred.times = Some((plo.max(*lo), phi.min(*hi)));
            }
            Filter::ProducerIs(p) => match pred.producer {
                None => pred.producer = Some(*p),
                Some(existing) if existing == *p => {}
                // Contradictory producer constraints: keep one pushed
                // down, the other as residual (yields empty result).
                Some(_) => residual.push(self.clone()),
            },
            Filter::CreditAtLeast(_) | Filter::TxCountAtLeast(_) => residual.push(self.clone()),
            Filter::And(fs) => {
                for f in fs {
                    f.push_into(pred, residual);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(height: u64, timestamp: i64, producer: u32, credit: u32, tx: u32) -> RowRecord {
        RowRecord {
            height,
            timestamp,
            producer,
            credit_millis: credit,
            tx_count: tx,
            size_bytes: 0,
            difficulty: 0,
        }
    }

    #[test]
    fn row_level_semantics() {
        let r = row(100, 5000, 3, 1000, 42);
        assert!(Filter::True.matches(&r));
        assert!(Filter::HeightBetween(100, 100).matches(&r));
        assert!(!Filter::HeightBetween(101, 200).matches(&r));
        assert!(Filter::TimeBetween(0, 5000).matches(&r));
        assert!(Filter::ProducerIs(3).matches(&r));
        assert!(!Filter::ProducerIs(4).matches(&r));
        assert!(Filter::CreditAtLeast(1000).matches(&r));
        assert!(!Filter::CreditAtLeast(1001).matches(&r));
        assert!(Filter::TxCountAtLeast(42).matches(&r));
    }

    #[test]
    fn and_composes() {
        let f = Filter::HeightBetween(0, 10)
            .and(Filter::ProducerIs(1))
            .and(Filter::True);
        assert!(f.matches(&row(5, 0, 1, 1000, 0)));
        assert!(!f.matches(&row(5, 0, 2, 1000, 0)));
        assert!(!f.matches(&row(11, 0, 1, 1000, 0)));
    }

    #[test]
    fn compile_pushes_ranges_down() {
        let f = Filter::HeightBetween(10, 100)
            .and(Filter::TimeBetween(0, 999))
            .and(Filter::ProducerIs(7));
        let (pred, residual) = f.compile();
        assert_eq!(pred.heights, Some((10, 100)));
        assert_eq!(pred.times, Some((0, 999)));
        assert_eq!(pred.producer, Some(7));
        assert_eq!(residual, Filter::True);
    }

    #[test]
    fn compile_intersects_overlapping_ranges() {
        let f = Filter::HeightBetween(10, 100).and(Filter::HeightBetween(50, 200));
        let (pred, _) = f.compile();
        assert_eq!(pred.heights, Some((50, 100)));
    }

    #[test]
    fn compile_leaves_residuals() {
        let f = Filter::CreditAtLeast(1000).and(Filter::HeightBetween(1, 2));
        let (pred, residual) = f.compile();
        assert_eq!(pred.heights, Some((1, 2)));
        assert_eq!(residual, Filter::CreditAtLeast(1000));
    }

    #[test]
    fn contradictory_producers_yield_empty() {
        let f = Filter::ProducerIs(1).and(Filter::ProducerIs(2));
        let (pred, residual) = f.compile();
        // One pushed down, the other residual: no row matches both.
        let r = row(0, 0, 1, 1000, 0);
        assert!(!(pred.matches(&r) && residual.matches(&r)));
        let r2 = row(0, 0, 2, 1000, 0);
        assert!(!(pred.matches(&r2) && residual.matches(&r2)));
    }

    #[test]
    fn pushdown_plus_residual_equals_direct() {
        let filters = [
            Filter::True,
            Filter::HeightBetween(20, 80).and(Filter::CreditAtLeast(500)),
            Filter::TimeBetween(100, 900)
                .and(Filter::TxCountAtLeast(5))
                .and(Filter::ProducerIs(2)),
        ];
        let rows: Vec<RowRecord> = (0..100)
            .map(|i| {
                row(
                    i,
                    (i as i64) * 10,
                    (i % 4) as u32,
                    (i % 3) as u32 * 500,
                    (i % 10) as u32,
                )
            })
            .collect();
        for f in &filters {
            let (pred, residual) = f.compile();
            for r in &rows {
                let direct = f.matches(r);
                let split = pred.matches(r) && residual.matches(r);
                assert_eq!(direct, split, "filter {f:?} row {r:?}");
            }
        }
    }
}
