//! # blockdec-obs
//!
//! Observability for the blockdec pipeline: structured logging with
//! spans, a process-wide metrics registry (counters + histograms), wall
//! time helpers, and an end-of-run summary.
//!
//! The crate is dependency-free and cheap when disabled: every log macro
//! first checks a single atomic, so uninstrumented-feeling hot paths stay
//! hot. There is no external collector — output goes to stderr in either
//! a human `compact` format or machine-parseable JSON lines, and metrics
//! live in-process until [`summary::RunSummary::collect`] reads them.
//!
//! ## One-call initialization
//!
//! ```
//! use blockdec_obs::log::{Config, Level, LogFormat};
//!
//! // Respects BLOCKDEC_LOG / BLOCKDEC_LOG_FORMAT, like an env-filter.
//! blockdec_obs::log::init(Config::from_env());
//! blockdec_obs::info!(blocks = 42u64; "pipeline ready");
//! ```
//!
//! ## Events, spans, and timers
//!
//! Fields come before the message, separated by `;`:
//!
//! ```
//! # blockdec_obs::log::init(blockdec_obs::log::Config::from_env());
//! blockdec_obs::debug!(file = "seg-00000001.bds", cache_hit = false; "cache miss");
//! let _t = blockdec_obs::span_timed!("stage.measure", metric = "gini");
//! // ... work ... the span closes (and its histogram records) on drop.
//! ```
//!
//! ## Metric names
//!
//! Stage histograms are named `stage.*` and render as the per-stage wall
//! time table in the run summary; counters use dotted paths like
//! `store.cache.hit`. The full inventory lives in `docs/OBSERVABILITY.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
pub mod metrics;
pub mod summary;
mod timefmt;
pub mod timer;

pub use log::{Config, Level, LogFormat};
pub use metrics::{counter, histogram, Counter, Histogram, HistogramSnapshot};
pub use summary::RunSummary;
pub use timer::Timer;
