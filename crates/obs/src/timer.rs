//! Wall-time helpers: record elapsed time into a named histogram.

use crate::metrics::{histogram, Histogram};
use std::sync::Arc;
use std::time::Instant;

/// Records wall time into a histogram when dropped (or explicitly via
/// [`Timer::stop`]).
///
/// ```
/// let t = blockdec_obs::Timer::new("stage.example");
/// // ... work ...
/// let secs = t.stop(); // or just drop it
/// assert!(secs >= 0.0);
/// ```
pub struct Timer {
    hist: Arc<Histogram>,
    start: Instant,
    armed: bool,
}

impl Timer {
    /// Start timing into the histogram named `name`.
    pub fn new(name: &str) -> Timer {
        Timer {
            hist: histogram(name),
            start: Instant::now(),
            armed: true,
        }
    }

    /// Seconds since the timer started, without recording.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Stop now, record, and return the elapsed seconds.
    pub fn stop(mut self) -> f64 {
        let secs = self.elapsed_secs();
        self.hist.record(secs);
        self.armed = false;
        secs
    }

    /// Abandon the timer without recording anything.
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.start.elapsed().as_secs_f64());
        }
    }
}

/// Guard pairing a log span with a timer: returned by
/// [`crate::span_timed!`], records into the histogram named after the
/// span when dropped.
pub struct TimedSpan {
    /// The entered log span (closes on drop).
    pub span: crate::log::Span,
    /// The running timer (records on drop).
    pub timer: Timer,
}

/// Enter a [`crate::span!`] at debug level **and** start a [`Timer`]
/// recording into a histogram of the same name. Bind the result:
/// `let _t = span_timed!("stage.measure", metric = name);`.
#[macro_export]
macro_rules! span_timed {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::timer::TimedSpan {
            span: $crate::log::Span::enter(
                $crate::log::Level::Debug,
                module_path!(),
                $name,
                vec![$((stringify!($key), $crate::log::FieldValue::from($value))),*],
            ),
            timer: $crate::timer::Timer::new($name),
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::histogram;
    use std::time::Duration;

    #[test]
    fn timer_records_plausible_bounds() {
        let t = Timer::new("test.timer.bounds");
        std::thread::sleep(Duration::from_millis(15));
        let secs = t.stop();
        // Lower bound is exact; upper bound is generous for loaded CI.
        assert!(secs >= 0.015, "{secs}");
        assert!(secs < 5.0, "{secs}");
        let snap = histogram("test.timer.bounds").snapshot();
        assert_eq!(snap.count, 1);
        assert!((snap.sum - secs).abs() < 1e-9);
    }

    #[test]
    fn timer_records_on_drop() {
        {
            let _t = Timer::new("test.timer.drop");
        }
        assert_eq!(histogram("test.timer.drop").snapshot().count, 1);
    }

    #[test]
    fn discard_records_nothing() {
        Timer::new("test.timer.discard").discard();
        assert_eq!(histogram("test.timer.discard").snapshot().count, 0);
    }

    #[test]
    fn span_timed_records_histogram() {
        {
            let _t = span_timed!("test.timer.span", tag = 7u64);
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = histogram("test.timer.span").snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.sum >= 0.002);
    }
}
