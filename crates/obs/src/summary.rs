//! End-of-run summary: per-stage wall time, throughput, cache hit rate,
//! and windows emitted, assembled from the metrics registry.

use crate::log::LogFormat;
use crate::metrics::{counter_values, histogram_snapshots, HistogramSnapshot};
use std::collections::BTreeMap;

/// One `stage.*` histogram rendered for the summary table.
#[derive(Clone, Debug)]
pub struct StageLine {
    /// Stage name with the `stage.` prefix stripped.
    pub name: String,
    /// How many times the stage ran.
    pub count: u64,
    /// Total wall seconds across runs.
    pub total_secs: f64,
}

/// A snapshot of the run's headline numbers. Build with
/// [`RunSummary::collect`]; render with [`RunSummary::render_text`] /
/// [`RunSummary::render_json`] or print via [`RunSummary::emit`].
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Per-stage wall time, in registration (alphabetical) order.
    pub stages: Vec<StageLine>,
    /// Blocks processed per wall second of measurement (or simulation /
    /// ingest when no measurement ran). `None` when nothing was counted.
    pub blocks_per_sec: Option<f64>,
    /// Segment-cache hit rate in `[0, 1]`; `None` before any lookup.
    pub cache_hit_rate: Option<f64>,
    /// Attribution rows decoded per wall second of store scanning
    /// (`store.decode.rows` over `stage.scan`). `None` when no columnar
    /// scan ran.
    pub decode_rows_per_sec: Option<f64>,
    /// Segment bytes decoded per wall second of store scanning, in MB/s
    /// (`store.decode.bytes` over `stage.scan`).
    pub decode_mb_per_sec: Option<f64>,
    /// Segments skipped without being opened (`store.scan.segments_pruned`:
    /// zone-map and producer-bloom pruning combined).
    pub segments_pruned: u64,
    /// The bloom-filter subset of the pruned segments
    /// (`store.scan.bloom_skip`).
    pub bloom_skips: u64,
    /// Column pages skipped inside decoded segments via v3 page-group
    /// zone maps (`store.scan.pages_pruned`).
    pub pages_pruned: u64,
    /// Configured segment-cache capacity in segments
    /// (`store.cache.capacity_segments` gauge; 0 = cache never touched).
    pub cache_capacity_segments: u64,
    /// Decoded bytes resident in the segment cache at exit
    /// (`store.cache.resident_bytes` gauge).
    pub cache_resident_bytes: u64,
    /// Bytes read from the storage backend (`store.backend.bytes_fetched`:
    /// whole objects plus ranged page-cache fills).
    pub backend_bytes_fetched: u64,
    /// Backend page-cache hit rate in `[0, 1]`; `None` before any ranged
    /// read (`store.backend.hit` / `store.backend.miss`).
    pub page_cache_hit_rate: Option<f64>,
    /// Transient backend read errors absorbed by the retry layer
    /// (`store.backend.retries`).
    pub backend_retries: u64,
    /// Measurement windows emitted (`engine.windows`).
    pub windows: u64,
    /// Store faults classified this run (`store.fault.detected`).
    pub faults_detected: u64,
    /// Segments quarantined by repair (`store.fault.quarantined`).
    pub segments_quarantined: u64,
    /// Segments skipped by degraded scans (`store.fault.segments_skipped`):
    /// reads that succeeded by omitting unreadable segments.
    pub segments_skipped: u64,
    /// Every registered counter, for the machine-readable dump.
    pub counters: BTreeMap<String, u64>,
}

fn rate(blocks: u64, secs: f64) -> Option<f64> {
    if blocks == 0 || secs <= 0.0 {
        None
    } else {
        Some(blocks as f64 / secs)
    }
}

impl RunSummary {
    /// Read the current registry state into a summary.
    pub fn collect() -> RunSummary {
        let counters = counter_values();
        let hists: BTreeMap<String, HistogramSnapshot> = histogram_snapshots();
        let stages: Vec<StageLine> = hists
            .iter()
            .filter_map(|(name, snap)| {
                let stage = name.strip_prefix("stage.")?;
                Some(StageLine {
                    name: stage.to_string(),
                    count: snap.count,
                    total_secs: snap.sum,
                })
            })
            .collect();
        let get = |k: &str| counters.get(k).copied().unwrap_or(0);
        let stage_secs = |k: &str| hists.get(k).map(|s| s.sum).unwrap_or(0.0);
        // Prefer measurement throughput; fall back to whichever stage ran.
        let blocks_per_sec = rate(get("engine.blocks"), stage_secs("stage.measure"))
            .or_else(|| rate(get("sim.blocks"), stage_secs("stage.simulate")))
            .or_else(|| rate(get("ingest.blocks"), stage_secs("stage.ingest")));
        let hits = get("store.cache.hit");
        let misses = get("store.cache.miss");
        let cache_hit_rate = if hits + misses > 0 {
            Some(hits as f64 / (hits + misses) as f64)
        } else {
            None
        };
        let scan_secs = stage_secs("stage.scan");
        let decode_rows_per_sec = rate(get("store.decode.rows"), scan_secs);
        let decode_mb_per_sec =
            rate(get("store.decode.bytes"), scan_secs).map(|r| r / (1024.0 * 1024.0));
        let page_hits = get("store.backend.hit");
        let page_misses = get("store.backend.miss");
        let page_cache_hit_rate = if page_hits + page_misses > 0 {
            Some(page_hits as f64 / (page_hits + page_misses) as f64)
        } else {
            None
        };
        RunSummary {
            stages,
            blocks_per_sec,
            cache_hit_rate,
            decode_rows_per_sec,
            decode_mb_per_sec,
            segments_pruned: get("store.scan.segments_pruned"),
            bloom_skips: get("store.scan.bloom_skip"),
            pages_pruned: get("store.scan.pages_pruned"),
            cache_capacity_segments: get("store.cache.capacity_segments"),
            cache_resident_bytes: get("store.cache.resident_bytes"),
            backend_bytes_fetched: get("store.backend.bytes_fetched"),
            page_cache_hit_rate,
            backend_retries: get("store.backend.retries"),
            windows: get("engine.windows"),
            faults_detected: get("store.fault.detected"),
            segments_quarantined: get("store.fault.quarantined"),
            segments_skipped: get("store.fault.segments_skipped"),
            counters,
        }
    }

    /// Human-readable multi-line table.
    pub fn render_text(&self) -> String {
        let mut out = String::from("run summary\n");
        if self.stages.is_empty() {
            out.push_str("  stages: none recorded\n");
        } else {
            out.push_str("  stage                 runs   wall time\n");
            for s in &self.stages {
                out.push_str(&format!(
                    "  {:<20} {:>5}   {:>8.3}s\n",
                    s.name, s.count, s.total_secs
                ));
            }
        }
        match self.blocks_per_sec {
            Some(r) => out.push_str(&format!("  throughput: {r:.0} blocks/sec\n")),
            None => out.push_str("  throughput: n/a\n"),
        }
        match self.cache_hit_rate {
            Some(r) => out.push_str(&format!("  store cache: {:.1}% hit rate\n", r * 100.0)),
            None => out.push_str("  store cache: no lookups\n"),
        }
        if let (Some(rows), Some(mb)) = (self.decode_rows_per_sec, self.decode_mb_per_sec) {
            out.push_str(&format!(
                "  store decode: {rows:.0} rows/sec, {mb:.1} MB/sec\n"
            ));
        }
        if self.segments_pruned > 0 || self.pages_pruned > 0 {
            out.push_str(&format!(
                "  scan pruning: {} segment(s) skipped ({} by bloom), {} page(s) skipped\n",
                self.segments_pruned, self.bloom_skips, self.pages_pruned
            ));
        }
        if self.cache_capacity_segments > 0 {
            out.push_str(&format!(
                "  segment cache: {} segment(s) capacity, {:.1} MB resident\n",
                self.cache_capacity_segments,
                self.cache_resident_bytes as f64 / (1024.0 * 1024.0)
            ));
        }
        if self.backend_bytes_fetched > 0 || self.backend_retries > 0 {
            out.push_str(&format!(
                "  backend: {:.1} MB fetched",
                self.backend_bytes_fetched as f64 / (1024.0 * 1024.0)
            ));
            if let Some(r) = self.page_cache_hit_rate {
                out.push_str(&format!(", page cache {:.1}% hit rate", r * 100.0));
            }
            if self.backend_retries > 0 {
                out.push_str(&format!(", {} read(s) retried", self.backend_retries));
            }
            out.push('\n');
        }
        out.push_str(&format!("  windows emitted: {}\n", self.windows));
        if self.faults_detected > 0 || self.segments_quarantined > 0 {
            out.push_str(&format!(
                "  store faults: {} detected, {} segment(s) quarantined\n",
                self.faults_detected, self.segments_quarantined
            ));
        }
        if self.segments_skipped > 0 {
            out.push_str(&format!(
                "  degraded scans: {} segment(s) skipped\n",
                self.segments_skipped
            ));
        }
        out
    }

    /// One JSON object (no trailing newline) with `stages`, `throughput`,
    /// `cache_hit_rate`, `windows`, and the raw `counters` map.
    pub fn render_json(&self) -> String {
        fn push_f64(out: &mut String, v: f64) {
            if v.is_finite() {
                out.push_str(&format!("{v:.6}"));
            } else {
                out.push_str("null");
            }
        }
        let mut out = String::from("{\"summary\":{\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"runs\":{},\"wall_secs\":",
                s.name, s.count
            ));
            push_f64(&mut out, s.total_secs);
            out.push('}');
        }
        out.push_str("],\"blocks_per_sec\":");
        match self.blocks_per_sec {
            Some(r) => push_f64(&mut out, r),
            None => out.push_str("null"),
        }
        out.push_str(",\"cache_hit_rate\":");
        match self.cache_hit_rate {
            Some(r) => push_f64(&mut out, r),
            None => out.push_str("null"),
        }
        out.push_str(",\"decode_rows_per_sec\":");
        match self.decode_rows_per_sec {
            Some(r) => push_f64(&mut out, r),
            None => out.push_str("null"),
        }
        out.push_str(",\"decode_mb_per_sec\":");
        match self.decode_mb_per_sec {
            Some(r) => push_f64(&mut out, r),
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ",\"segments_pruned\":{},\"bloom_skips\":{},\"pages_pruned\":{}",
            self.segments_pruned, self.bloom_skips, self.pages_pruned
        ));
        out.push_str(&format!(
            ",\"cache_capacity_segments\":{},\"cache_resident_bytes\":{},\"backend_bytes_fetched\":{}",
            self.cache_capacity_segments, self.cache_resident_bytes, self.backend_bytes_fetched
        ));
        out.push_str(",\"page_cache_hit_rate\":");
        match self.page_cache_hit_rate {
            Some(r) => push_f64(&mut out, r),
            None => out.push_str("null"),
        }
        out.push_str(&format!(",\"backend_retries\":{}", self.backend_retries));
        out.push_str(&format!(
            ",\"windows\":{},\"faults_detected\":{},\"segments_quarantined\":{},\"segments_skipped\":{},\"counters\":{{",
            self.windows, self.faults_detected, self.segments_quarantined, self.segments_skipped
        ));
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("}}}");
        out
    }

    /// Print the summary to stderr in the logger's configured format
    /// (text when no logger is installed).
    pub fn emit(&self) {
        let json = matches!(
            crate::log::logger().map(|l| l.format()),
            Some(LogFormat::Json)
        );
        if json {
            eprintln!("{}", self.render_json());
        } else {
            eprint!("{}", self.render_text());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSummary {
        RunSummary {
            stages: vec![
                StageLine {
                    name: "measure".into(),
                    count: 2,
                    total_secs: 1.25,
                },
                StageLine {
                    name: "scan".into(),
                    count: 1,
                    total_secs: 0.5,
                },
            ],
            blocks_per_sec: Some(42_000.0),
            cache_hit_rate: Some(0.875),
            decode_rows_per_sec: Some(2_000_000.0),
            decode_mb_per_sec: Some(96.5),
            segments_pruned: 12,
            bloom_skips: 4,
            pages_pruned: 84,
            cache_capacity_segments: 8,
            cache_resident_bytes: 3 * 1024 * 1024,
            backend_bytes_fetched: 2 * 1024 * 1024,
            page_cache_hit_rate: Some(0.75),
            backend_retries: 2,
            windows: 365,
            faults_detected: 0,
            segments_quarantined: 0,
            segments_skipped: 0,
            counters: BTreeMap::from([
                ("engine.windows".to_string(), 365u64),
                ("store.cache.hit".to_string(), 7u64),
            ]),
        }
    }

    #[test]
    fn text_contains_headline_numbers() {
        let text = sample().render_text();
        assert!(text.contains("measure"), "{text}");
        assert!(text.contains("42000 blocks/sec"), "{text}");
        assert!(text.contains("87.5% hit rate"), "{text}");
        assert!(
            text.contains("store decode: 2000000 rows/sec, 96.5 MB/sec"),
            "{text}"
        );
        assert!(
            text.contains("scan pruning: 12 segment(s) skipped (4 by bloom), 84 page(s) skipped"),
            "{text}"
        );
        assert!(text.contains("windows emitted: 365"), "{text}");
        assert!(
            text.contains("segment cache: 8 segment(s) capacity, 3.0 MB resident"),
            "{text}"
        );
        assert!(
            text.contains("backend: 2.0 MB fetched, page cache 75.0% hit rate, 2 read(s) retried"),
            "{text}"
        );
    }

    #[test]
    fn json_is_well_formed() {
        let json = sample().render_json();
        assert!(json.starts_with("{\"summary\":{"));
        assert!(json.contains("\"windows\":365"), "{json}");
        assert!(
            json.contains("\"segments_pruned\":12,\"bloom_skips\":4,\"pages_pruned\":84"),
            "{json}"
        );
        assert!(json.contains("\"cache_hit_rate\":0.875"), "{json}");
        assert!(
            json.contains("\"cache_capacity_segments\":8,\"cache_resident_bytes\":3145728"),
            "{json}"
        );
        assert!(json.contains("\"backend_bytes_fetched\":2097152"), "{json}");
        assert!(json.contains("\"page_cache_hit_rate\":0.75"), "{json}");
        assert!(json.contains("\"backend_retries\":2"), "{json}");
        assert!(json.contains("\"engine.windows\":365"), "{json}");
        // Balanced braces (no string values contain braces here).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_summary_renders() {
        let s = RunSummary {
            stages: Vec::new(),
            blocks_per_sec: None,
            cache_hit_rate: None,
            decode_rows_per_sec: None,
            decode_mb_per_sec: None,
            segments_pruned: 0,
            bloom_skips: 0,
            pages_pruned: 0,
            cache_capacity_segments: 0,
            cache_resident_bytes: 0,
            backend_bytes_fetched: 0,
            page_cache_hit_rate: None,
            backend_retries: 0,
            windows: 0,
            faults_detected: 0,
            segments_quarantined: 0,
            segments_skipped: 0,
            counters: BTreeMap::new(),
        };
        assert!(s.render_text().contains("none recorded"));
        assert!(s.render_json().contains("\"blocks_per_sec\":null"));
        assert!(s.render_json().contains("\"decode_rows_per_sec\":null"));
        assert!(s.render_json().contains("\"page_cache_hit_rate\":null"));
        // Quiet runs stay quiet: no fault line, no decode line, no
        // pruning, cache, or backend lines.
        assert!(!s.render_text().contains("store faults"));
        assert!(!s.render_text().contains("degraded scans"));
        assert!(!s.render_text().contains("store decode"));
        assert!(!s.render_text().contains("scan pruning"));
        assert!(!s.render_text().contains("segment cache"));
        assert!(!s.render_text().contains("backend:"));
    }

    #[test]
    fn fault_line_renders_when_nonzero() {
        let mut s = sample();
        s.faults_detected = 3;
        s.segments_quarantined = 1;
        s.segments_skipped = 2;
        let text = s.render_text();
        assert!(
            text.contains("store faults: 3 detected, 1 segment(s) quarantined"),
            "{text}"
        );
        assert!(
            text.contains("degraded scans: 2 segment(s) skipped"),
            "{text}"
        );
        let json = s.render_json();
        assert!(json.contains("\"faults_detected\":3"), "{json}");
        assert!(json.contains("\"segments_quarantined\":1"), "{json}");
        assert!(json.contains("\"segments_skipped\":2"), "{json}");
    }

    #[test]
    fn collect_reads_registry() {
        crate::metrics::counter("engine.windows").add(3);
        crate::metrics::histogram("stage.summary_test").record(0.25);
        let s = RunSummary::collect();
        assert!(s.windows >= 3);
        assert!(s.stages.iter().any(|st| st.name == "summary_test"));
    }
}
