//! Structured logging: levels, env-filter, spans, and two line formats.
//!
//! This is a self-contained subset of the `tracing` model: events carry a
//! level, target (module path), fields, and a message; spans are named
//! regions entered on creation and closed on drop, with the close event
//! reporting elapsed time. A process-wide [`Logger`] set by [`init`]
//! filters by level per target prefix and renders each line to stderr in
//! either `compact` or JSON form.
//!
//! Filtering is checked against one atomic before any formatting happens,
//! so disabled call sites cost a load and a compare.

use crate::timefmt::now_rfc3339;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Event/span severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The pipeline cannot proceed as asked.
    Error = 1,
    /// Suspicious but survivable.
    Warn = 2,
    /// Stage-level progress (the default).
    Info = 3,
    /// Per-operation detail: segment reads, parses, window batches.
    Debug = 4,
    /// Per-item detail: cache lookups, individual rows.
    Trace = 5,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// Line rendering for emitted events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// Human-oriented single lines: timestamp, level, target, spans,
    /// fields, message.
    #[default]
    Compact,
    /// One JSON object per line with `ts`/`level`/`target`/`spans`/
    /// `fields`/`message` keys.
    Json,
}

impl LogFormat {
    /// Parse `compact` or `json` (case-insensitive).
    pub fn parse(s: &str) -> Option<LogFormat> {
        match s.trim().to_ascii_lowercase().as_str() {
            "compact" | "text" => Some(LogFormat::Compact),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

/// A typed field value attached to an event or span.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Boolean flag (e.g. `cache_hit`).
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point (non-finite renders as JSON null).
    F64(f64),
    /// Free text.
    Str(String),
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue { FieldValue::$variant(v as $cast) }
        }
    )*};
}
field_from!(
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    f32 => F64 as f64, f64 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl From<&String> for FieldValue {
    fn from(v: &String) -> FieldValue {
        FieldValue::Str(v.clone())
    }
}

impl FieldValue {
    fn write_compact(&self, out: &mut String) {
        match self {
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => out.push_str(&format_f64(*v)),
            FieldValue::Str(s) => {
                if s.chars().any(|c| c.is_whitespace() || c == '"') {
                    write_json_string(out, s);
                } else {
                    out.push_str(s);
                }
            }
        }
    }

    fn write_json(&self, out: &mut String) {
        match self {
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) if v.is_finite() => out.push_str(&format_f64(*v)),
            FieldValue::F64(_) => out.push_str("null"),
            FieldValue::Str(s) => write_json_string(out, s),
        }
    }
}

fn format_f64(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One `target-prefix=level` filter directive.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Directive {
    prefix: String,
    level: Level,
}

/// Logger configuration: a filter string plus an output format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Config {
    default_level: Level,
    directives: Vec<Directive>,
    format: LogFormat,
}

impl Default for Config {
    /// `info` everywhere, compact output.
    fn default() -> Config {
        Config {
            default_level: Level::Info,
            directives: Vec::new(),
            format: LogFormat::Compact,
        }
    }
}

impl Config {
    /// Parse an env-filter string: a comma list of bare levels and
    /// `target-prefix=level` directives, e.g.
    /// `info,blockdec_store=trace`. Unknown pieces are errors.
    pub fn from_filter(filter: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        cfg.apply_filter(filter)?;
        Ok(cfg)
    }

    /// Read `BLOCKDEC_LOG` (filter) and `BLOCKDEC_LOG_FORMAT`
    /// (`compact`/`json`), falling back to the defaults on unset or
    /// malformed values.
    pub fn from_env() -> Config {
        let mut cfg = Config::default();
        if let Ok(filter) = std::env::var("BLOCKDEC_LOG") {
            let _ = cfg.apply_filter(&filter);
        }
        if let Ok(fmt) = std::env::var("BLOCKDEC_LOG_FORMAT") {
            if let Some(f) = LogFormat::parse(&fmt) {
                cfg.format = f;
            }
        }
        cfg
    }

    fn apply_filter(&mut self, filter: &str) -> Result<(), String> {
        for part in filter.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some((target, lvl)) = part.split_once('=') {
                let level = Level::parse(lvl)
                    .ok_or_else(|| format!("bad level {lvl:?} in directive {part:?}"))?;
                self.directives.push(Directive {
                    prefix: target.trim().to_string(),
                    level,
                });
            } else {
                self.default_level = Level::parse(part)
                    .ok_or_else(|| format!("bad level {part:?} (error|warn|info|debug|trace)"))?;
            }
        }
        // Longest prefix first so the most specific directive wins.
        self.directives
            .sort_by_key(|d| std::cmp::Reverse(d.prefix.len()));
        Ok(())
    }

    /// Replace the filter (see [`Config::from_filter`]).
    pub fn filter(mut self, filter: &str) -> Result<Config, String> {
        self.default_level = Level::Info;
        self.directives.clear();
        self.apply_filter(filter)?;
        Ok(self)
    }

    /// Set the output format.
    pub fn format(mut self, format: LogFormat) -> Config {
        self.format = format;
        self
    }

    fn max_level(&self) -> Level {
        self.directives
            .iter()
            .map(|d| d.level)
            .max()
            .map_or(self.default_level, |m| m.max(self.default_level))
    }
}

/// The installed logger. Obtain with [`init`]; query with [`enabled`].
pub struct Logger {
    config: Config,
    start: Instant,
}

impl Logger {
    fn level_for(&self, target: &str) -> Level {
        for d in &self.config.directives {
            if target.starts_with(d.prefix.as_str()) {
                return d.level;
            }
        }
        self.config.default_level
    }

    /// The configured output format.
    pub fn format(&self) -> LogFormat {
        self.config.format
    }

    /// Wall time since [`init`].
    pub fn uptime(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

static LOGGER: OnceLock<Logger> = OnceLock::new();
/// 0 = uninitialized (everything disabled). Otherwise the max enabled
/// level across all directives, used as the cheap first-pass filter.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

/// Install the process-wide logger. The first call wins and returns
/// `true`; later calls are ignored and return `false` (handy in tests
/// where many entry points race to initialize).
pub fn init(config: Config) -> bool {
    let max = config.max_level();
    let installed = LOGGER
        .set(Logger {
            config,
            start: Instant::now(),
        })
        .is_ok();
    if installed {
        MAX_LEVEL.store(max as u8, Ordering::Release);
    }
    installed
}

/// The installed logger, if [`init`] has run.
pub fn logger() -> Option<&'static Logger> {
    if MAX_LEVEL.load(Ordering::Acquire) == 0 {
        return None;
    }
    LOGGER.get()
}

/// Fast filter check: would an event at `level` for `target` be emitted?
#[inline]
pub fn enabled(level: Level, target: &str) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    if (level as u8) > max {
        return false;
    }
    match LOGGER.get() {
        Some(l) => level <= l.level_for(target),
        None => false,
    }
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

fn span_path() -> Option<String> {
    SPAN_STACK.with(|s| {
        let s = s.borrow();
        if s.is_empty() {
            None
        } else {
            Some(s.join(":"))
        }
    })
}

/// Emit one event. Call sites go through the level macros, which check
/// [`enabled`] first; this does the formatting.
pub fn emit(level: Level, target: &str, fields: &[(&'static str, FieldValue)], message: &str) {
    let Some(logger) = LOGGER.get() else { return };
    let line = render_line(
        logger.config.format,
        &now_rfc3339(),
        level,
        target,
        span_path().as_deref(),
        fields,
        message,
    );
    eprintln!("{line}");
}

/// Render one log line without emitting it (the formatting core of
/// [`emit`], separated so tests can check both formats byte-for-byte).
pub fn render_line(
    format: LogFormat,
    ts: &str,
    level: Level,
    target: &str,
    span: Option<&str>,
    fields: &[(&'static str, FieldValue)],
    message: &str,
) -> String {
    let mut line = String::with_capacity(96);
    match format {
        LogFormat::Compact => {
            line.push_str(ts);
            line.push(' ');
            line.push_str(&format!("{:>5}", level.as_str()));
            line.push(' ');
            line.push_str(target);
            if let Some(spans) = span {
                line.push(' ');
                line.push_str(spans);
            }
            if !fields.is_empty() {
                line.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        line.push(' ');
                    }
                    line.push_str(k);
                    line.push('=');
                    v.write_compact(&mut line);
                }
                line.push('}');
            }
            line.push(' ');
            line.push_str(message);
        }
        LogFormat::Json => {
            line.push_str("{\"ts\":");
            write_json_string(&mut line, ts);
            line.push_str(",\"level\":");
            write_json_string(&mut line, &level.as_str().to_ascii_lowercase());
            line.push_str(",\"target\":");
            write_json_string(&mut line, target);
            if let Some(spans) = span {
                line.push_str(",\"span\":");
                write_json_string(&mut line, spans);
            }
            line.push_str(",\"fields\":{");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                write_json_string(&mut line, k);
                line.push(':');
                v.write_json(&mut line);
            }
            line.push_str("},\"message\":");
            write_json_string(&mut line, message);
            line.push('}');
        }
    }
    line
}

/// An entered span; exits (and logs a `close` event with `elapsed_ms`)
/// on drop. Create with the [`crate::span!`] macro.
pub struct Span {
    level: Level,
    target: &'static str,
    active: bool,
    start: Instant,
}

impl Span {
    /// Enter a span. When the level is filtered out the span is inert
    /// (no stack push, no close event).
    pub fn enter(
        level: Level,
        target: &'static str,
        name: &str,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> Span {
        let active = enabled(level, target);
        if active {
            emit(level, target, &fields, &format!("{name} start"));
            SPAN_STACK.with(|s| s.borrow_mut().push(name.to_string()));
        }
        Span {
            level,
            target,
            active,
            start: Instant::now(),
        }
    }

    /// Elapsed time since the span was entered.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.active {
            let elapsed_ms = self.start.elapsed().as_secs_f64() * 1e3;
            emit(
                self.level,
                self.target,
                &[("elapsed_ms", FieldValue::F64(elapsed_ms))],
                "close",
            );
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Emit an event at an explicit level. Fields (`key = value`, comma
/// separated) come before the message, separated by `;`:
/// `event!(Level::Info, blocks = n; "loaded")`.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $($key:ident = $value:expr),+ ; $($arg:tt)+) => {
        if $crate::log::enabled($lvl, module_path!()) {
            $crate::log::emit(
                $lvl,
                module_path!(),
                &[$((stringify!($key), $crate::log::FieldValue::from($value))),+],
                &format!($($arg)+),
            );
        }
    };
    ($lvl:expr, $($arg:tt)+) => {
        if $crate::log::enabled($lvl, module_path!()) {
            $crate::log::emit($lvl, module_path!(), &[], &format!($($arg)+));
        }
    };
}

/// [`event!`] at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($t:tt)+) => { $crate::event!($crate::log::Level::Error, $($t)+) };
}

/// [`event!`] at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($t:tt)+) => { $crate::event!($crate::log::Level::Warn, $($t)+) };
}

/// [`event!`] at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($t:tt)+) => { $crate::event!($crate::log::Level::Info, $($t)+) };
}

/// [`event!`] at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($t:tt)+) => { $crate::event!($crate::log::Level::Debug, $($t)+) };
}

/// [`event!`] at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($t:tt)+) => { $crate::event!($crate::log::Level::Trace, $($t)+) };
}

/// Enter a span: `let _s = span!(Level::Debug, "store.segment_read",
/// file = name);`. The span exits when the guard drops.
#[macro_export]
macro_rules! span {
    ($lvl:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::log::Span::enter(
            $lvl,
            module_path!(),
            $name,
            vec![$((stringify!($key), $crate::log::FieldValue::from($value))),*],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Trace);
    }

    #[test]
    fn filter_directives_pick_most_specific() {
        let cfg =
            Config::from_filter("warn,blockdec_store=trace,blockdec_store::cache=error").unwrap();
        let logger = Logger {
            config: cfg,
            start: Instant::now(),
        };
        assert_eq!(logger.level_for("blockdec_core::engine"), Level::Warn);
        assert_eq!(logger.level_for("blockdec_store::segment"), Level::Trace);
        assert_eq!(logger.level_for("blockdec_store::cache"), Level::Error);
    }

    #[test]
    fn bad_filter_is_an_error() {
        assert!(Config::from_filter("blockdec=loud").is_err());
        assert!(Config::from_filter("shout").is_err());
    }

    #[test]
    fn format_parse() {
        assert_eq!(LogFormat::parse("json"), Some(LogFormat::Json));
        assert_eq!(LogFormat::parse("Compact"), Some(LogFormat::Compact));
        assert_eq!(LogFormat::parse("xml"), None);
    }

    #[test]
    fn field_value_compact_and_json() {
        let mut s = String::new();
        FieldValue::from(3u64).write_compact(&mut s);
        s.push(' ');
        FieldValue::from(true).write_compact(&mut s);
        s.push(' ');
        FieldValue::from("a b").write_compact(&mut s);
        assert_eq!(s, "3 true \"a b\"");

        let mut j = String::new();
        FieldValue::from(f64::NAN).write_json(&mut j);
        j.push(' ');
        FieldValue::from("x\"y\n").write_json(&mut j);
        assert_eq!(j, "null \"x\\\"y\\n\"");
    }

    #[test]
    fn uninitialized_is_disabled() {
        // This test binary never calls init(), so everything is off.
        assert!(!enabled(Level::Error, "anything"));
        assert!(logger().is_none());
    }
}
