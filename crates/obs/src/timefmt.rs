//! RFC 3339 UTC timestamps without a date-time dependency.

use std::time::{SystemTime, UNIX_EPOCH};

/// Civil date from days since the UNIX epoch (Howard Hinnant's
/// `civil_from_days` algorithm, valid far beyond any plausible log time).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Format UNIX seconds + subsecond millis as `YYYY-MM-DDTHH:MM:SS.mmmZ`.
pub fn rfc3339(secs: i64, millis: u32) -> String {
    let days = secs.div_euclid(86_400);
    let tod = secs.rem_euclid(86_400);
    let (y, mo, d) = civil_from_days(days);
    format!(
        "{y:04}-{mo:02}-{d:02}T{:02}:{:02}:{:02}.{millis:03}Z",
        tod / 3600,
        (tod / 60) % 60,
        tod % 60
    )
}

/// The current wall-clock instant as an RFC 3339 string.
pub fn now_rfc3339() -> String {
    match SystemTime::now().duration_since(UNIX_EPOCH) {
        Ok(d) => rfc3339(d.as_secs() as i64, d.subsec_millis()),
        // Clock before 1970: clamp to the epoch rather than panic.
        Err(_) => rfc3339(0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_dates() {
        assert_eq!(rfc3339(0, 0), "1970-01-01T00:00:00.000Z");
        // 2019-01-01T00:00:00Z == 1546300800.
        assert_eq!(rfc3339(1_546_300_800, 250), "2019-01-01T00:00:00.250Z");
        // Leap-year day: 2020-02-29T12:34:56Z == 1582979696.
        assert_eq!(rfc3339(1_582_979_696, 7), "2020-02-29T12:34:56.007Z");
    }

    #[test]
    fn now_is_parseable_shape() {
        let s = now_rfc3339();
        assert_eq!(s.len(), 24);
        assert!(s.ends_with('Z'));
        assert_eq!(&s[10..11], "T");
    }
}
