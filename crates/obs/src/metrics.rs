//! In-process metrics: named counters and histograms.
//!
//! There is no external backend — a process-wide registry maps dotted
//! names (`store.cache.hit`, `stage.measure`) to atomics, and the run
//! summary reads them at exit. [`counter`]/[`histogram`] intern the name
//! on first use and return a shared handle; hot paths should look the
//! handle up once and reuse it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the value. For gauge-style readings (configured
    /// capacity, resident bytes) where the latest observation, not a
    /// running total, is what the summary should show.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// Number of log2 buckets. Bucket `i` covers seconds in
/// `[2^(i-32), 2^(i-31))`, spanning ~0.2ns to ~4.2e9s.
const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistInner {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKETS],
}

/// Histogram of non-negative observations (by convention, seconds).
///
/// Exact count/sum/min/max plus log2 buckets for approximate quantiles —
/// enough for "p95 segment read" without storing every sample.
#[derive(Debug)]
pub struct Histogram {
    inner: Mutex<HistInner>,
}

fn bucket_index(v: f64) -> usize {
    if v <= 0.0 {
        return 0;
    }
    (v.log2().floor() as i64 + 32).clamp(0, BUCKETS as i64 - 1) as usize
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            inner: Mutex::new(HistInner {
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                buckets: [0; BUCKETS],
            }),
        }
    }
}

impl Histogram {
    /// Record one observation. Negative or non-finite values are ignored.
    pub fn record(&self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            return;
        }
        let mut h = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        h.count += 1;
        h.sum += v;
        h.min = h.min.min(v);
        h.max = h.max.max(v);
        h.buckets[bucket_index(v)] += 1;
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            min: if h.count == 0 { 0.0 } else { h.min },
            max: if h.count == 0 { 0.0 } else { h.max },
            buckets: h.buckets,
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the log2 buckets: the
    /// geometric midpoint of the bucket holding the q-th observation,
    /// clamped to the observed min/max. Accurate to ~2x, which is enough
    /// for latency triage.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let lo = 2f64.powi(i as i32 - 32);
                let mid = lo * std::f64::consts::SQRT_2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

/// Look up (or create) the counter named `name`.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut map = registry()
        .counters
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    match map.get(name) {
        Some(c) => Arc::clone(c),
        None => {
            let c = Arc::new(Counter::default());
            map.insert(name.to_string(), Arc::clone(&c));
            c
        }
    }
}

/// Look up (or create) the histogram named `name`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut map = registry()
        .histograms
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    match map.get(name) {
        Some(h) => Arc::clone(h),
        None => {
            let h = Arc::new(Histogram::default());
            map.insert(name.to_string(), Arc::clone(&h));
            h
        }
    }
}

/// Name → value for every registered counter.
pub fn counter_values() -> BTreeMap<String, u64> {
    registry()
        .counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), v.get()))
        .collect()
}

/// Name → snapshot for every registered histogram.
pub fn histogram_snapshots() -> BTreeMap<String, HistogramSnapshot> {
    registry()
        .histograms
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), v.snapshot()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_math() {
        let c = counter("test.metrics.counter_math");
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Same name → same handle.
        assert_eq!(counter("test.metrics.counter_math").get(), 42);
    }

    #[test]
    fn histogram_exact_stats() {
        let h = Histogram::default();
        for v in [0.5, 1.5, 2.0, 4.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert!((s.sum - 8.0).abs() < 1e-12);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 4.0);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_ignores_junk() {
        let h = Histogram::default();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-1.0);
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(h.snapshot().quantile(0.5), 0.0);
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        let h = Histogram::default();
        // 90 fast observations, 10 slow ones.
        for _ in 0..90 {
            h.record(0.001);
        }
        for _ in 0..10 {
            h.record(1.0);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        // log2 buckets are accurate to ~2x.
        assert!((0.0005..=0.002).contains(&p50), "p50 {p50}");
        assert!((0.5..=2.0).contains(&p99), "p99 {p99}");
        assert!(s.quantile(0.0) >= s.min);
        assert!(s.quantile(1.0) <= s.max);
    }

    #[test]
    fn bucket_index_monotone_and_clamped() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(f64::MIN_POSITIVE), 0);
        assert_eq!(bucket_index(1e300), BUCKETS - 1);
        let mut prev = 0;
        for exp in -30..30 {
            let i = bucket_index(2f64.powi(exp));
            assert!(i >= prev);
            prev = i;
        }
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let c = counter("test.metrics.concurrent");
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
