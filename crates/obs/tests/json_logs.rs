//! Smoke tests for the machine-readable output paths: JSON log lines and
//! the JSON run summary must parse with a real JSON parser.

use blockdec_obs::log::{render_line, Config, FieldValue, Level, LogFormat};
use blockdec_obs::RunSummary;
use serde_json::Value;

#[test]
fn json_log_line_parses_and_round_trips_fields() {
    let line = render_line(
        LogFormat::Json,
        "2026-08-05T00:00:00.000Z",
        Level::Debug,
        "blockdec_store::segment",
        Some("stage.scan:store.segment_read"),
        &[
            ("file", FieldValue::from("seg-00000001.bds")),
            ("rows", FieldValue::from(65_536u64)),
            ("cache_hit", FieldValue::from(false)),
            ("elapsed_ms", FieldValue::from(1.5f64)),
            ("note", FieldValue::from("quotes \" and\nnewlines")),
        ],
        "read segment",
    );
    let v: Value = serde_json::from_str(&line).expect("line is valid JSON");
    assert_eq!(v.get("level").and_then(Value::as_str), Some("debug"));
    assert_eq!(
        v.get("target").and_then(Value::as_str),
        Some("blockdec_store::segment")
    );
    assert_eq!(
        v.get("span").and_then(Value::as_str),
        Some("stage.scan:store.segment_read")
    );
    assert_eq!(
        v.get("message").and_then(Value::as_str),
        Some("read segment")
    );
    let fields = v.get("fields").expect("fields object");
    assert_eq!(fields.get("rows").and_then(Value::as_u64), Some(65_536));
    assert_eq!(fields.get("cache_hit"), Some(&Value::Bool(false)));
    assert_eq!(
        fields.get("note").and_then(Value::as_str),
        Some("quotes \" and\nnewlines")
    );
}

#[test]
fn json_log_line_handles_non_finite_floats() {
    let line = render_line(
        LogFormat::Json,
        "2026-08-05T00:00:00.000Z",
        Level::Info,
        "t",
        None,
        &[("bad", FieldValue::from(f64::NAN))],
        "m",
    );
    let v: Value = serde_json::from_str(&line).expect("valid JSON despite NaN");
    assert!(v
        .get("fields")
        .and_then(|f| f.get("bad"))
        .unwrap()
        .is_null());
    assert!(v.get("span").is_none());
}

#[test]
fn compact_line_has_expected_shape() {
    let line = render_line(
        LogFormat::Compact,
        "2026-08-05T00:00:00.000Z",
        Level::Info,
        "blockdec_core::engine",
        None,
        &[("windows", FieldValue::from(365u64))],
        "measured",
    );
    assert_eq!(
        line,
        "2026-08-05T00:00:00.000Z  INFO blockdec_core::engine{windows=365} measured"
    );
}

#[test]
fn run_summary_json_parses() {
    // Populate the registry the way an instrumented run would.
    blockdec_obs::counter("engine.windows").add(365);
    blockdec_obs::counter("engine.blocks").add(52_560);
    blockdec_obs::counter("store.cache.hit").add(9);
    blockdec_obs::counter("store.cache.miss").add(3);
    blockdec_obs::histogram("stage.measure").record(1.5);
    let summary = RunSummary::collect();
    let v: Value = serde_json::from_str(&summary.render_json()).expect("summary is valid JSON");
    let s = v.get("summary").expect("summary key");
    assert_eq!(s.get("windows").and_then(Value::as_u64), Some(365));
    let hit_rate = s.get("cache_hit_rate").and_then(Value::as_f64).unwrap();
    assert!((hit_rate - 0.75).abs() < 1e-9, "{hit_rate}");
    assert!(s.get("blocks_per_sec").and_then(Value::as_f64).unwrap() > 0.0);
    let stages = s.get("stages").and_then(Value::as_array).unwrap();
    assert!(stages
        .iter()
        .any(|st| st.get("name").and_then(Value::as_str) == Some("measure")));
}

#[test]
fn init_and_macros_do_not_panic_in_json_mode() {
    // Full end-to-end path: install a JSON logger and drive every macro.
    // (Output goes to this test binary's stderr; the parse checks above
    // cover content.)
    blockdec_obs::log::init(
        Config::from_filter("trace")
            .unwrap()
            .format(LogFormat::Json),
    );
    blockdec_obs::info!(blocks = 10u64; "info event");
    blockdec_obs::debug!("debug event with fmt {}", 1 + 1);
    blockdec_obs::trace!(cache_hit = true; "trace event");
    let _s = blockdec_obs::span!(Level::Debug, "outer", tag = "smoke");
    {
        let _t = blockdec_obs::span_timed!("stage.smoke");
        blockdec_obs::warn!("nested inside two spans");
    }
    assert!(blockdec_obs::log::enabled(Level::Trace, "anything"));
    assert!(blockdec_obs::log::logger().is_some());
}
