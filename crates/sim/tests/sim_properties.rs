//! Property-based tests for the simulator: determinism, population
//! arithmetic under arbitrary share tables, schedule interpolation, and
//! generated-chain invariants for arbitrary (small) scenarios.

use blockdec_chain::validate::{validate_chain, ValidationConfig};
use blockdec_chain::{AttributionMode, ChainKind, Timestamp};
use blockdec_sim::events::EventConfig;
use blockdec_sim::hashrate::{schedule_share, SharePoint};
use blockdec_sim::population::{MinerPopulation, PoolState, TailState};
use blockdec_sim::rng::SimRng;
use blockdec_sim::scenario::{PoolConfig, Scenario, TailConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn pool_state(name: String, share: f64) -> PoolState {
    PoolState {
        name,
        tag: None,
        address_seed: 1,
        schedule: vec![SharePoint { day: 0.0, share }],
        drift: blockdec_sim::hashrate::DriftState::new(0.0, 0.0),
    }
}

/// Arbitrary small scenarios: 2–6 pools with arbitrary positive shares,
/// a tail, and maybe an event.
fn scenarios() -> impl Strategy<Value = Scenario> {
    (
        prop::collection::vec(0.01f64..0.4, 2..6),
        1u32..60,
        0.0f64..0.3,
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(shares, tail_miners_x10, tail_share, seed, with_event)| {
            let pools: Vec<PoolConfig> = shares
                .iter()
                .enumerate()
                .map(|(i, &share)| PoolConfig {
                    name: format!("pool-{i}"),
                    tag: Some(format!("/pool-{i}/")),
                    address: None,
                    schedule: vec![SharePoint { day: 0.0, share }],
                    drift_sigma: 0.05,
                    drift_reversion: 0.2,
                })
                .collect();
            let events = if with_event {
                vec![EventConfig::MultiCoinbase {
                    day: 1,
                    block_of_day: 10,
                    addresses: 25,
                }]
            } else {
                Vec::new()
            };
            Scenario {
                name: "prop".into(),
                chain: ChainKind::Bitcoin,
                seed,
                start_time: Timestamp::year_2019_start().secs(),
                days: 3,
                pools,
                tail: TailConfig {
                    miners: tail_miners_x10 * 10,
                    alpha: 0.9,
                    schedule: vec![SharePoint {
                        day: 0.0,
                        share: tail_share,
                    }],
                },
                events,
                hashrate_growth: 1.5,
                timestamp_jitter: true,
                attribution: AttributionMode::PerAddress,
                limit_blocks: Some(600),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generation_is_deterministic(scenario in scenarios()) {
        let a = scenario.generate_blocks();
        let b = scenario.generate_blocks();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn generated_chains_always_validate(scenario in scenarios()) {
        let blocks = scenario.generate_blocks();
        prop_assume!(!blocks.is_empty());
        let report = validate_chain(&blocks, &ValidationConfig::default())
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(report.blocks as usize, blocks.len());
        prop_assert_eq!(report.first_height, ChainKind::Bitcoin.spec().first_block_2019);
    }

    #[test]
    fn attribution_covers_every_block(scenario in scenarios()) {
        let stream = scenario.generate();
        let blocks = scenario.generate_blocks();
        prop_assert_eq!(stream.attributed.len(), blocks.len());
        for (ab, b) in stream.attributed.iter().zip(&blocks) {
            prop_assert_eq!(ab.height, b.height);
            prop_assert!(!ab.credits.is_empty());
            // Per-address attribution: one credit per payout address for
            // untagged blocks, exactly one for pool-tagged blocks.
            if b.coinbase.tag.is_some() {
                prop_assert_eq!(ab.credits.len(), 1);
            } else {
                prop_assert_eq!(ab.credits.len(), b.coinbase.payout_addresses.len());
            }
        }
    }

    #[test]
    fn json_roundtrip_any_scenario(scenario in scenarios()) {
        let json = scenario.to_json();
        let back = Scenario::from_json(&json).map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(back, scenario);
    }
}

proptest! {
    #[test]
    fn schedule_share_is_bounded_and_continuous(
        knots in prop::collection::vec((0.0f64..365.0, 0.0f64..1.0), 1..6),
        day in -10.0f64..400.0,
    ) {
        let mut sorted = knots.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let schedule: Vec<SharePoint> = sorted
            .iter()
            .map(|&(day, share)| SharePoint { day, share })
            .collect();
        let v = schedule_share(&schedule, day);
        let lo = sorted.iter().map(|&(_, s)| s).fold(f64::INFINITY, f64::min);
        let hi = sorted.iter().map(|&(_, s)| s).fold(0.0, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "{v} outside [{lo}, {hi}]");
        // Continuity: nearby days give nearby shares.
        let v2 = schedule_share(&schedule, day + 1e-6);
        prop_assert!((v - v2).abs() < 1e-3);
    }

    #[test]
    fn population_shares_always_normalize(
        shares in prop::collection::vec(0.001f64..1.0, 1..8),
        tail_share in 0.0f64..0.5,
        forced in prop::option::of((0usize..8, 0.05f64..0.6)),
    ) {
        let pools: Vec<PoolState> = shares
            .iter()
            .enumerate()
            .map(|(i, &s)| pool_state(format!("p{i}"), s))
            .collect();
        let n = pools.len();
        let mut pop = MinerPopulation::new(
            pools,
            TailState {
                miners: 50,
                alpha: 1.0,
                schedule: vec![SharePoint { day: 0.0, share: tail_share }],
            },
        );
        let mut overrides = BTreeMap::new();
        if let Some((idx, share)) = forced {
            if idx < n {
                overrides.insert(idx, share);
            }
        }
        pop.refresh(0.0, &overrides);
        let total: f64 = (0..n).map(|i| pop.effective_pool_share(i)).sum::<f64>()
            + pop.effective_tail_share();
        prop_assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        // Forced share is honoured exactly.
        if let Some((idx, share)) = forced {
            if idx < n {
                prop_assert!((pop.effective_pool_share(idx) - share).abs() < 1e-9);
            }
        }
        // Sampling never panics and returns valid refs.
        let mut rng = SimRng::new(1);
        for _ in 0..50 {
            let _ = pop.sample(&mut rng);
        }
    }
}
