//! The block-stream generator: turns a [`Scenario`] into blocks.
//!
//! [`BlockGenerator`] is a lazy iterator over [`Block`]s — the full-year
//! Ethereum stream is 2.2M blocks, so callers that only need attribution
//! results use [`Scenario::generate`], which pipes the stream through an
//! [`Attributor`] and keeps only the compact [`AttributedBlock`]s.

use crate::arrival::{ArrivalConfig, ArrivalProcess};
use crate::difficulty::DifficultyState;
use crate::events::EventSchedule;
use crate::population::{MinerPopulation, MinerRef, PoolState, TailState};
use crate::rng::SimRng;
use crate::scenario::Scenario;
use blockdec_chain::hash::splitmix64;
use blockdec_chain::{
    Address, AttributedBlock, Attributor, Block, BlockColumns, BlockHash, ChainKind,
    ProducerRegistry, Timestamp,
};
use std::collections::BTreeMap;

/// Seed domain for synthesized tail-miner addresses.
const TAIL_ADDR_DOMAIN: u64 = 0x7a11_0000_0000_0000;
/// Seed domain for multi-coinbase anomaly payout addresses.
const ANOMALY_ADDR_DOMAIN: u64 = 0xacab_0000_0000_0000;

/// Iterator producing a scenario's blocks in height order.
pub struct BlockGenerator {
    chain: ChainKind,
    hash_domain: u64,
    rng_blocks: SimRng,
    rng_drift: SimRng,
    rng_meta: SimRng,
    population: MinerPopulation,
    arrival: ArrivalProcess,
    schedule: EventSchedule,
    start_time: i64,
    end_time: i64,
    current_day: i64,
    blocks_today: u32,
    pending_multi: Vec<(u32, u32)>,
    next_height: u64,
    parent: BlockHash,
    produced: u64,
    limit: Option<u64>,
    pool_addresses: Vec<Address>,
}

impl BlockGenerator {
    fn new(scenario: &Scenario) -> BlockGenerator {
        let spec = scenario.spec();
        let mut root = SimRng::new(scenario.seed);
        let rng_blocks = root.fork(1);
        let rng_drift = root.fork(2);
        let rng_meta = root.fork(3);

        let pools: Vec<PoolState> = scenario
            .pools
            .iter()
            .enumerate()
            .map(|(i, p)| PoolState {
                name: p.name.clone(),
                tag: p.tag.clone(),
                address_seed: splitmix64(scenario.seed ^ (i as u64 + 1)),
                schedule: p.schedule.clone(),
                drift: crate::hashrate::DriftState::new(p.drift_sigma, p.drift_reversion),
            })
            .collect();
        let pool_addresses: Vec<Address> = scenario
            .pools
            .iter()
            .zip(&pools)
            .map(|(cfg, state)| match &cfg.address {
                Some(a) => Address::parse(scenario.chain, a).expect("preset addresses are valid"), // blockdec-lint: allow(panic) — preset addresses are fixture constants; failing fast beats mis-attributing
                None => Address::synthesize(scenario.chain, state.address_seed),
            })
            .collect();
        let population = MinerPopulation::new(
            pools,
            TailState {
                miners: scenario.tail.miners,
                alpha: scenario.tail.alpha,
                schedule: scenario.tail.schedule.clone(),
            },
        );

        let difficulty = DifficultyState::new(
            spec.retarget,
            spec.target_block_interval_secs,
            spec.target_block_interval_secs,
            scenario.start_time,
        );
        let arrival = ArrivalProcess::new(
            ArrivalConfig {
                chain: scenario.chain,
                base_hashrate: 1.0,
                growth: scenario.hashrate_growth,
                // Growth is defined per 365 days so truncated scenarios
                // keep the same early-year dynamics as the full year.
                days: 365.0,
                timestamp_jitter: scenario.timestamp_jitter,
            },
            difficulty,
            scenario.start_time,
        );

        BlockGenerator {
            chain: scenario.chain,
            hash_domain: scenario.chain.id() ^ splitmix64(scenario.seed),
            rng_blocks,
            rng_drift,
            rng_meta,
            population,
            arrival,
            schedule: EventSchedule::new(&scenario.events),
            start_time: scenario.start_time,
            end_time: scenario.start_time + i64::from(scenario.days) * 86_400,
            current_day: -1,
            blocks_today: 0,
            pending_multi: Vec::new(),
            next_height: spec.first_block_2019,
            parent: BlockHash::ZERO,
            produced: 0,
            limit: scenario.limit_blocks,
            pool_addresses,
        }
    }

    fn enter_day(&mut self, day: i64) {
        // Step drift once per elapsed day so long gaps stay consistent.
        let from = self.current_day.max(-1);
        for _ in from..day {
            self.population.step_drift(&mut self.rng_drift);
        }
        self.current_day = day;
        self.blocks_today = 0;

        let day_u = u32::try_from(day.max(0)).unwrap_or(u32::MAX);
        let overrides_by_name = self.schedule.share_overrides_on(day_u);
        let mut overrides: BTreeMap<usize, f64> = BTreeMap::new();
        for (name, share) in overrides_by_name {
            if let Some(idx) = self.population.pool_index(name) {
                overrides.insert(idx, share);
            }
        }
        self.population.refresh(day as f64, &overrides);
        self.pending_multi = self.schedule.multi_coinbase_on(day_u).to_vec();
    }

    fn sample_tx_and_size(&mut self) -> (u32, u32) {
        match self.chain {
            ChainKind::Bitcoin => {
                let tx = (2_200.0 + 500.0 * self.rng_meta.standard_normal()).clamp(100.0, 5_000.0)
                    as u32;
                let size = (tx as f64 * 440.0 * (0.9 + 0.2 * self.rng_meta.unit())) as u32;
                (tx, size.min(1_400_000))
            }
            ChainKind::Ethereum => {
                let tx = (120.0 + 45.0 * self.rng_meta.standard_normal()).clamp(0.0, 450.0) as u32;
                let size = 2_000 + (tx as f64 * 250.0 * (0.8 + 0.4 * self.rng_meta.unit())) as u32;
                (tx, size)
            }
        }
    }

    fn build_block(
        &mut self,
        timestamp: i64,
        difficulty: u64,
        payouts: Vec<Address>,
        tag: Option<String>,
    ) -> Block {
        let height = self.next_height;
        let hash = BlockHash::digest(self.hash_domain, height);
        let (tx_count, size_bytes) = self.sample_tx_and_size();
        let mut builder = Block::builder(self.chain, height)
            .hash(hash)
            .parent(self.parent)
            .timestamp(Timestamp(timestamp))
            .difficulty(difficulty)
            .tx_count(tx_count)
            .size_bytes(size_bytes)
            .payouts(payouts);
        if let Some(t) = tag {
            builder = builder.tag(t);
        }
        let block = builder.build().expect("generator produces valid blocks"); // blockdec-lint: allow(panic) — the generator supplies every field the builder requires
        self.parent = hash;
        self.next_height += 1;
        self.produced += 1;
        self.blocks_today += 1;
        block
    }
}

impl Iterator for BlockGenerator {
    type Item = Block;

    fn next(&mut self) -> Option<Block> {
        if let Some(limit) = self.limit {
            if self.produced >= limit {
                return None;
            }
        }
        let arrival = self.arrival.next_block(&mut self.rng_blocks);
        if arrival.arrival_time >= self.end_time {
            return None;
        }
        let day = (arrival.arrival_time - self.start_time).div_euclid(86_400);
        if day != self.current_day {
            self.enter_day(day);
        }

        // A scheduled multi-coinbase block replaces the sampled miner.
        if let Some(pos) = self
            .pending_multi
            .iter()
            .position(|&(offset, _)| offset == self.blocks_today)
        {
            let (_, addresses) = self.pending_multi.remove(pos);
            let height = self.next_height;
            let payouts: Vec<Address> = (0..addresses)
                .map(|k| {
                    Address::synthesize(
                        self.chain,
                        ANOMALY_ADDR_DOMAIN ^ (height << 12) ^ u64::from(k),
                    )
                })
                .collect();
            return Some(self.build_block(
                arrival.declared_time,
                arrival.difficulty,
                payouts,
                None,
            ));
        }

        let (payouts, tag) = match self.population.sample(&mut self.rng_blocks) {
            MinerRef::Pool(i) => (
                vec![self.pool_addresses[i].clone()],
                self.population.pool(i).tag.clone(),
            ),
            MinerRef::Tail(i) => (
                vec![Address::synthesize(
                    self.chain,
                    TAIL_ADDR_DOMAIN ^ (self.chain.id() << 32) ^ u64::from(i),
                )],
                None,
            ),
        };
        Some(self.build_block(arrival.declared_time, arrival.difficulty, payouts, tag))
    }
}

/// The outcome of [`Scenario::generate`]: attribution results plus
/// summary metadata.
#[derive(Clone, Debug)]
pub struct GeneratedStream {
    /// Per-block attribution results, in height order.
    pub attributed: Vec<AttributedBlock>,
    /// Producer name registry accumulated during attribution.
    pub registry: ProducerRegistry,
    /// `(tag_hits, address_hits, fallbacks)` from the attributor.
    pub attribution_stats: (u64, u64, u64),
    /// First generated height.
    pub first_height: u64,
    /// Last generated height.
    pub last_height: u64,
}

impl GeneratedStream {
    /// Number of blocks generated.
    pub fn len(&self) -> usize {
        self.attributed.len()
    }

    /// True when nothing was generated.
    pub fn is_empty(&self) -> bool {
        self.attributed.is_empty()
    }
}

/// The outcome of [`Scenario::generate_columns`]: columnar attribution
/// results plus summary metadata.
#[derive(Clone, Debug)]
pub struct GeneratedColumns {
    /// Per-block attribution results in columnar (SoA) layout, height order.
    pub columns: BlockColumns,
    /// Producer name registry accumulated during attribution.
    pub registry: ProducerRegistry,
    /// `(tag_hits, address_hits, fallbacks)` from the attributor.
    pub attribution_stats: (u64, u64, u64),
    /// First generated height.
    pub first_height: u64,
    /// Last generated height.
    pub last_height: u64,
}

impl GeneratedColumns {
    /// Number of blocks generated.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when nothing was generated.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

impl Scenario {
    /// Lazy block iterator for this scenario.
    pub fn iter(&self) -> BlockGenerator {
        BlockGenerator::new(self)
    }

    /// Generate and attribute the whole stream, keeping only the compact
    /// attribution results (suitable for the full 2.2M-block Ethereum
    /// year).
    pub fn generate(&self) -> GeneratedStream {
        let _t = blockdec_obs::span_timed!(
            "stage.simulate",
            chain = self.chain.to_string(),
            days = self.days,
            seed = self.seed,
        );
        let mut attributor = Attributor::new(self.chain, self.attribution);
        let mut attributed = Vec::new();
        let mut first_height = 0;
        let mut last_height = 0;
        for (i, block) in self.iter().enumerate() {
            if i == 0 {
                first_height = block.height;
            }
            last_height = block.height;
            attributed.push(attributor.attribute(&block));
        }
        blockdec_obs::counter("sim.blocks").add(attributed.len() as u64);
        blockdec_obs::debug!(
            blocks = attributed.len(),
            first_height = first_height,
            last_height = last_height;
            "generated attributed stream"
        );
        GeneratedStream {
            attributed,
            attribution_stats: attributor.stats(),
            registry: attributor.into_registry(),
            first_height,
            last_height,
        }
    }

    /// Generate and attribute the whole stream straight into columnar
    /// (SoA) layout — no per-block credit `Vec`s are ever allocated, so
    /// this is the cheapest way to feed the 2.2M-block Ethereum year to
    /// the measurement planner.
    pub fn generate_columns(&self) -> GeneratedColumns {
        let _t = blockdec_obs::span_timed!(
            "stage.simulate",
            chain = self.chain.to_string(),
            days = self.days,
            seed = self.seed,
        );
        let mut attributor = Attributor::new(self.chain, self.attribution);
        let mut columns = BlockColumns::new();
        let mut first_height = 0;
        let mut last_height = 0;
        for (i, block) in self.iter().enumerate() {
            if i == 0 {
                first_height = block.height;
            }
            last_height = block.height;
            attributor.attribute_into(&block, &mut columns);
        }
        blockdec_obs::counter("sim.blocks").add(columns.len() as u64);
        blockdec_obs::debug!(
            blocks = columns.len(),
            first_height = first_height,
            last_height = last_height;
            "generated columnar attributed stream"
        );
        GeneratedColumns {
            columns,
            attribution_stats: attributor.stats(),
            registry: attributor.into_registry(),
            first_height,
            last_height,
        }
    }

    /// Materialize full [`Block`]s (small runs / tests / export).
    pub fn generate_blocks(&self) -> Vec<Block> {
        let _t = blockdec_obs::span_timed!(
            "stage.simulate",
            chain = self.chain.to_string(),
            days = self.days,
            seed = self.seed,
        );
        let blocks: Vec<Block> = self.iter().collect();
        blockdec_obs::counter("sim.blocks").add(blocks.len() as u64);
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdec_chain::validate::{validate_chain, ValidationConfig};

    fn small_btc(days: u32) -> Scenario {
        Scenario::bitcoin_2019().truncated(days)
    }

    #[test]
    fn generates_roughly_the_right_block_count() {
        let s = small_btc(10);
        let n = s.iter().count();
        // ~144/day ± sampling noise.
        assert!((1_200..1_700).contains(&n), "{n} blocks in 10 days");
    }

    #[test]
    fn deterministic_per_seed() {
        let s = small_btc(3);
        let a: Vec<Block> = s.generate_blocks();
        let b: Vec<Block> = s.generate_blocks();
        assert_eq!(a, b);
        let c: Vec<Block> = s.clone().with_seed(7).generate_blocks();
        assert_ne!(a, c);
    }

    #[test]
    fn heights_are_contiguous_from_spec_origin() {
        let s = small_btc(2);
        let blocks = s.generate_blocks();
        assert_eq!(blocks[0].height, s.spec().first_block_2019);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.height, s.spec().first_block_2019 + i as u64);
        }
    }

    #[test]
    fn generated_chain_validates() {
        for s in [
            Scenario::bitcoin_2019().truncated(5),
            Scenario::ethereum_2019().truncated(1),
        ] {
            let blocks = s.generate_blocks();
            let report = validate_chain(&blocks, &ValidationConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(report.blocks as usize, blocks.len());
        }
    }

    #[test]
    fn timestamps_stay_in_scenario_range() {
        let s = small_btc(4);
        let end = s.start_time + 4 * 86_400;
        for b in s.iter() {
            // Declared jitter may run slightly past an edge; true arrival
            // is bounded, so allow the 2-minute declared slack.
            assert!(b.timestamp.secs() >= s.start_time - 130);
            assert!(b.timestamp.secs() < end + 130);
        }
    }

    #[test]
    fn limit_blocks_caps_output() {
        let mut s = small_btc(10);
        s.limit_blocks = Some(100);
        assert_eq!(s.iter().count(), 100);
    }

    #[test]
    fn multi_coinbase_events_appear() {
        // Day 13 carries the two big anomaly blocks.
        let s = small_btc(15);
        let blocks = s.generate_blocks();
        let multi: Vec<&Block> = blocks
            .iter()
            .filter(|b| b.coinbase.payout_addresses.len() > 1)
            .collect();
        let counts: Vec<usize> = multi
            .iter()
            .map(|b| b.coinbase.payout_addresses.len())
            .collect();
        assert!(
            counts.contains(&85),
            "expected an 85-address block: {counts:?}"
        );
        assert!(
            counts.contains(&93),
            "expected a 93-address block: {counts:?}"
        );
        // They land on day 13.
        let origin = Timestamp::year_2019_start();
        for b in &multi {
            if b.coinbase.payout_addresses.len() >= 85 {
                assert_eq!(b.timestamp.day_index(origin), 13);
            }
        }
    }

    #[test]
    fn anomaly_addresses_are_unique_within_block() {
        let s = small_btc(15);
        for b in s.iter() {
            let n = b.coinbase.payout_addresses.len();
            if n > 1 {
                let mut set: Vec<&str> = b
                    .coinbase
                    .payout_addresses
                    .iter()
                    .map(|a| a.as_str())
                    .collect();
                set.sort_unstable();
                set.dedup();
                assert_eq!(set.len(), n, "duplicate payout addresses");
            }
        }
    }

    #[test]
    fn pool_blocks_carry_tags_and_stable_addresses() {
        let s = small_btc(2);
        let mut f2pool_addrs: Vec<String> = Vec::new();
        for b in s.iter() {
            if b.coinbase.tag.as_deref() == Some("/F2Pool/") {
                f2pool_addrs.push(b.coinbase.payout_addresses[0].as_str().to_string());
            }
        }
        assert!(!f2pool_addrs.is_empty());
        f2pool_addrs.dedup();
        assert_eq!(f2pool_addrs.len(), 1, "pool address must be stable");
    }

    #[test]
    fn generate_attributes_every_block() {
        let s = small_btc(3);
        let stream = s.generate();
        assert_eq!(stream.len(), s.iter().count());
        assert!(!stream.is_empty());
        assert!(stream.registry.len() > 10);
        let (tag_hits, _, fallbacks) = stream.attribution_stats;
        assert!(tag_hits > 0, "pool tags must attribute");
        assert!(fallbacks > 0, "tail miners must fall back to addresses");
        assert_eq!(stream.first_height, s.spec().first_block_2019);
        assert_eq!(
            stream.last_height,
            s.spec().first_block_2019 + stream.len() as u64 - 1
        );
    }

    #[test]
    fn generate_columns_matches_generate() {
        // 15 days covers the day-13 multi-coinbase anomaly blocks, so the
        // columnar path is exercised on real multi-credit blocks too.
        let s = small_btc(15);
        let aos = s.generate();
        let soa = s.generate_columns();
        soa.columns.validate().unwrap();
        assert_eq!(soa.columns, BlockColumns::from_blocks(&aos.attributed));
        assert_eq!(soa.attribution_stats, aos.attribution_stats);
        assert_eq!(soa.first_height, aos.first_height);
        assert_eq!(soa.last_height, aos.last_height);
        let names_aos: Vec<&str> = aos.registry.iter().map(|(_, n)| n).collect();
        let names_soa: Vec<&str> = soa.registry.iter().map(|(_, n)| n).collect();
        assert_eq!(names_aos, names_soa);
    }

    #[test]
    fn ethereum_attribution_uses_known_addresses() {
        let mut s = Scenario::ethereum_2019().truncated(1);
        s.limit_blocks = Some(2_000);
        let stream = s.generate();
        let names: Vec<&str> = stream.registry.iter().map(|(_, n)| n).collect();
        assert!(names.contains(&"Ethermine"), "registry: {names:?}");
        assert!(names.contains(&"SparkPool"));
    }

    #[test]
    fn dominant_burst_shifts_production() {
        // Compare BTC.com's share on burst days (61..65) vs before.
        let s = Scenario::bitcoin_2019().truncated(66);
        let origin = Timestamp::year_2019_start();
        let mut burst = (0u32, 0u32); // (btc.com, total)
        let mut before = (0u32, 0u32);
        for b in s.iter() {
            let day = b.timestamp.day_index(origin);
            let is_btccom = b.coinbase.tag.as_deref() == Some("/BTC.COM/");
            if (61..65).contains(&day) {
                burst.1 += 1;
                burst.0 += u32::from(is_btccom);
            } else if (40..54).contains(&day) {
                before.1 += 1;
                before.0 += u32::from(is_btccom);
            }
        }
        let burst_share = f64::from(burst.0) / f64::from(burst.1);
        let before_share = f64::from(before.0) / f64::from(before.1);
        assert!(burst_share > 0.40, "burst share {burst_share}");
        assert!(before_share < 0.30, "baseline share {before_share}");
    }
}
