//! Pool hashrate-share schedules with stochastic drift.
//!
//! Each pool's share of total hashrate follows a piecewise-linear
//! schedule over the year (capturing regime changes such as the early-2019
//! Bitcoin consolidation) multiplied by a slowly-drifting log-normal
//! factor (capturing day-to-day luck and rig churn). Shares across the
//! population are renormalized daily, so schedules express *relative*
//! intent and need not sum to exactly one.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// One knot of a share schedule: `share` holds from/interpolates at `day`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SharePoint {
    /// Day offset from the scenario start (fractional allowed).
    pub day: f64,
    /// Intended share of total hashrate at that day.
    pub share: f64,
}

/// Piecewise-linear interpolation over schedule knots. Before the first
/// knot the first share holds; after the last, the last share holds.
pub fn schedule_share(schedule: &[SharePoint], day: f64) -> f64 {
    match schedule {
        [] => 0.0,
        [only] => only.share,
        _ => {
            let first = &schedule[0];
            if day <= first.day {
                return first.share;
            }
            let last = &schedule[schedule.len() - 1];
            if day >= last.day {
                return last.share;
            }
            for pair in schedule.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                if day >= a.day && day <= b.day {
                    let span = b.day - a.day;
                    if span <= 0.0 {
                        return b.share;
                    }
                    let t = (day - a.day) / span;
                    return a.share + t * (b.share - a.share);
                }
            }
            last.share
        }
    }
}

/// Multiplicative log-normal drift state for one pool.
#[derive(Clone, Debug)]
pub struct DriftState {
    /// Current multiplicative factor applied to the scheduled share.
    pub factor: f64,
    /// Daily log-sigma of the random walk.
    pub sigma: f64,
    /// Mean-reversion strength per day (0 = pure random walk).
    pub reversion: f64,
}

impl DriftState {
    /// Fresh drift at factor 1.0.
    pub fn new(sigma: f64, reversion: f64) -> DriftState {
        DriftState {
            factor: 1.0,
            sigma,
            reversion,
        }
    }

    /// Advance one day: factor follows an Ornstein–Uhlenbeck-flavoured
    /// walk in log space, clamped to [0.25, 4.0] so no pool's luck can
    /// overwhelm its schedule.
    pub fn step(&mut self, rng: &mut SimRng) {
        let log_f = self.factor.ln();
        let next = log_f * (1.0 - self.reversion) + self.sigma * rng.standard_normal();
        self.factor = next.exp().clamp(0.25, 4.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knots(points: &[(f64, f64)]) -> Vec<SharePoint> {
        points
            .iter()
            .map(|&(day, share)| SharePoint { day, share })
            .collect()
    }

    #[test]
    fn empty_schedule_is_zero() {
        assert_eq!(schedule_share(&[], 10.0), 0.0);
    }

    #[test]
    fn single_knot_is_constant() {
        let s = knots(&[(50.0, 0.2)]);
        assert_eq!(schedule_share(&s, 0.0), 0.2);
        assert_eq!(schedule_share(&s, 100.0), 0.2);
    }

    #[test]
    fn clamps_outside_range() {
        let s = knots(&[(10.0, 0.1), (20.0, 0.3)]);
        assert_eq!(schedule_share(&s, 0.0), 0.1);
        assert_eq!(schedule_share(&s, 25.0), 0.3);
    }

    #[test]
    fn interpolates_linearly() {
        let s = knots(&[(0.0, 0.0), (10.0, 1.0)]);
        assert!((schedule_share(&s, 5.0) - 0.5).abs() < 1e-12);
        assert!((schedule_share(&s, 2.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn multi_segment() {
        let s = knots(&[(0.0, 0.2), (50.0, 0.2), (90.0, 0.1), (365.0, 0.1)]);
        assert_eq!(schedule_share(&s, 25.0), 0.2);
        assert!((schedule_share(&s, 70.0) - 0.15).abs() < 1e-12);
        assert_eq!(schedule_share(&s, 200.0), 0.1);
    }

    #[test]
    fn duplicate_day_knots_do_not_divide_by_zero() {
        let s = knots(&[(10.0, 0.1), (10.0, 0.5), (20.0, 0.5)]);
        let v = schedule_share(&s, 10.0);
        assert!(v == 0.1 || v == 0.5);
        assert!((schedule_share(&s, 15.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drift_stays_clamped_and_deterministic() {
        let mut rng1 = SimRng::new(9);
        let mut rng2 = SimRng::new(9);
        let mut d1 = DriftState::new(0.2, 0.05);
        let mut d2 = DriftState::new(0.2, 0.05);
        for _ in 0..1000 {
            d1.step(&mut rng1);
            d2.step(&mut rng2);
            assert_eq!(d1.factor.to_bits(), d2.factor.to_bits());
            assert!((0.25..=4.0).contains(&d1.factor));
        }
    }

    #[test]
    fn zero_sigma_drift_stays_at_one() {
        let mut rng = SimRng::new(10);
        let mut d = DriftState::new(0.0, 0.1);
        for _ in 0..100 {
            d.step(&mut rng);
        }
        assert!((d.factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reversion_pulls_back_to_one() {
        let mut rng = SimRng::new(11);
        let mut d = DriftState::new(0.0, 0.5);
        d.factor = 3.0;
        for _ in 0..50 {
            d.step(&mut rng);
        }
        assert!((d.factor - 1.0).abs() < 0.01, "factor {}", d.factor);
    }
}
