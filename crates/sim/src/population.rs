//! The miner population: named pools plus a Pareto long tail of solo
//! miners.
//!
//! Day by day the population recomputes effective sampling weights:
//! scheduled pool shares × a drifting luck factor, a scheduled aggregate
//! tail share split across solo miners by Pareto rank weights, and any
//! event-forced share overrides (the dominant-miner burst of Fig. 13).
//! Block producers are then drawn from the resulting categorical
//! distribution.

use crate::hashrate::{schedule_share, DriftState, SharePoint};
use crate::rng::{cumulative, pareto_rank_weights, SimRng};
use std::collections::BTreeMap;

/// A pool as the population sees it at runtime.
#[derive(Clone, Debug)]
pub struct PoolState {
    /// Canonical pool name (also the attribution identity).
    pub name: String,
    /// Coinbase marker / extra_data the pool stamps, if it self-identifies.
    pub tag: Option<String>,
    /// Seed for the pool's synthesized payout address.
    pub address_seed: u64,
    /// Intended share schedule over the scenario.
    pub schedule: Vec<SharePoint>,
    /// Stochastic luck drift.
    pub drift: DriftState,
}

/// Who produced a block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MinerRef {
    /// A named pool (index into the pool list).
    Pool(usize),
    /// A solo tail miner (stable tail index).
    Tail(u32),
}

/// Tail (solo miner) configuration at runtime.
#[derive(Clone, Debug)]
pub struct TailState {
    /// Number of distinct solo miners.
    pub miners: u32,
    /// Pareto exponent for rank weights (0 = uniform).
    pub alpha: f64,
    /// Aggregate tail share schedule.
    pub schedule: Vec<SharePoint>,
}

/// The sampling population, refreshed daily.
#[derive(Clone, Debug)]
pub struct MinerPopulation {
    pools: Vec<PoolState>,
    tail: TailState,
    tail_cum: Vec<f64>,
    // Daily state:
    pool_cum: Vec<f64>,
    pool_total: f64,
    tail_weight: f64,
}

impl MinerPopulation {
    /// Build a population. Panics if there are neither pools nor tail
    /// miners.
    pub fn new(pools: Vec<PoolState>, tail: TailState) -> MinerPopulation {
        assert!(
            !pools.is_empty() || tail.miners > 0,
            "population needs at least one miner"
        );
        let tail_cum = cumulative(&pareto_rank_weights(tail.miners as usize, tail.alpha));
        let mut p = MinerPopulation {
            pools,
            tail,
            tail_cum,
            pool_cum: Vec::new(),
            pool_total: 0.0,
            tail_weight: 0.0,
        };
        p.refresh(0.0, &BTreeMap::new());
        p
    }

    /// Number of pools.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// Access a pool's static identity.
    pub fn pool(&self, idx: usize) -> &PoolState {
        &self.pools[idx]
    }

    /// Find a pool index by name.
    pub fn pool_index(&self, name: &str) -> Option<usize> {
        self.pools.iter().position(|p| p.name == name)
    }

    /// Advance drift state one day. Call once per simulated day before
    /// [`Self::refresh`].
    pub fn step_drift(&mut self, rng: &mut SimRng) {
        for pool in &mut self.pools {
            pool.drift.step(rng);
        }
    }

    /// Recompute sampling weights for `day`, applying event share
    /// overrides (pool index → forced normalized share).
    pub fn refresh(&mut self, day: f64, overrides: &BTreeMap<usize, f64>) {
        let forced_total: f64 = overrides.values().sum();
        let free_budget = (1.0 - forced_total).max(0.0);

        // Raw (unnormalized) intended weights for non-overridden mass.
        let mut raw: Vec<f64> = self
            .pools
            .iter()
            .map(|p| (schedule_share(&p.schedule, day) * p.drift.factor).max(0.0))
            .collect();
        let raw_tail = schedule_share(&self.tail.schedule, day).max(0.0);
        let raw_free: f64 = raw
            .iter()
            .enumerate()
            .filter(|(i, _)| !overrides.contains_key(i))
            .map(|(_, w)| *w)
            .sum::<f64>()
            + raw_tail;

        let scale = if raw_free > 0.0 {
            free_budget / raw_free
        } else {
            0.0
        };

        for (i, w) in raw.iter_mut().enumerate() {
            *w = match overrides.get(&i) {
                Some(&forced) => forced.max(0.0),
                None => *w * scale,
            };
        }
        self.tail_weight = if self.tail.miners > 0 {
            raw_tail * scale
        } else {
            0.0
        };
        self.pool_cum = cumulative(&raw);
        self.pool_total = self.pool_cum.last().copied().unwrap_or(0.0);
    }

    /// Current effective share of a pool (after overrides/normalization).
    pub fn effective_pool_share(&self, idx: usize) -> f64 {
        let total = self.pool_total + self.tail_weight;
        if total <= 0.0 {
            return 0.0;
        }
        let lo = if idx == 0 {
            0.0
        } else {
            self.pool_cum[idx - 1]
        };
        (self.pool_cum[idx] - lo) / total
    }

    /// Current effective aggregate tail share.
    pub fn effective_tail_share(&self) -> f64 {
        let total = self.pool_total + self.tail_weight;
        if total <= 0.0 {
            0.0
        } else {
            self.tail_weight / total
        }
    }

    /// Draw the producer of the next block.
    pub fn sample(&self, rng: &mut SimRng) -> MinerRef {
        let total = self.pool_total + self.tail_weight;
        assert!(total > 0.0, "population has zero total weight");
        let x = rng.unit() * total;
        if x < self.pool_total && !self.pools.is_empty() {
            // Find in pool cumulative.
            let i = match self.pool_cum.binary_search_by(|c| c.total_cmp(&x)) {
                Ok(i) => (i + 1).min(self.pools.len() - 1),
                Err(i) => i.min(self.pools.len() - 1),
            };
            MinerRef::Pool(i)
        } else {
            MinerRef::Tail(rng.pick_cumulative(&self.tail_cum) as u32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(name: &str, share: f64) -> PoolState {
        PoolState {
            name: name.to_string(),
            tag: Some(format!("/{name}/")),
            address_seed: name.len() as u64,
            schedule: vec![SharePoint { day: 0.0, share }],
            drift: DriftState::new(0.0, 0.0),
        }
    }

    fn tail(miners: u32, share: f64) -> TailState {
        TailState {
            miners,
            alpha: 0.8,
            schedule: vec![SharePoint { day: 0.0, share }],
        }
    }

    fn sample_shares(pop: &MinerPopulation, rng: &mut SimRng, n: usize) -> (Vec<f64>, f64) {
        let mut pool_counts = vec![0u32; pop.pool_count()];
        let mut tail_count = 0u32;
        for _ in 0..n {
            match pop.sample(rng) {
                MinerRef::Pool(i) => pool_counts[i] += 1,
                MinerRef::Tail(_) => tail_count += 1,
            }
        }
        (
            pool_counts.iter().map(|&c| c as f64 / n as f64).collect(),
            tail_count as f64 / n as f64,
        )
    }

    #[test]
    fn sampling_matches_intended_shares() {
        let pop = MinerPopulation::new(vec![pool("A", 0.5), pool("B", 0.3)], tail(100, 0.2));
        let mut rng = SimRng::new(30);
        let (shares, tail_share) = sample_shares(&pop, &mut rng, 200_000);
        assert!((shares[0] - 0.5).abs() < 0.01, "A {}", shares[0]);
        assert!((shares[1] - 0.3).abs() < 0.01, "B {}", shares[1]);
        assert!((tail_share - 0.2).abs() < 0.01, "tail {tail_share}");
    }

    #[test]
    fn shares_renormalize_when_not_summing_to_one() {
        // Intent sums to 0.5: normalization doubles everything.
        let pop = MinerPopulation::new(vec![pool("A", 0.3), pool("B", 0.1)], tail(10, 0.1));
        assert!((pop.effective_pool_share(0) - 0.6).abs() < 1e-9);
        assert!((pop.effective_pool_share(1) - 0.2).abs() < 1e-9);
        assert!((pop.effective_tail_share() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn override_forces_share() {
        let mut pop = MinerPopulation::new(vec![pool("A", 0.4), pool("B", 0.4)], tail(50, 0.2));
        let mut forced = BTreeMap::new();
        forced.insert(0usize, 0.55f64);
        pop.refresh(0.0, &forced);
        assert!((pop.effective_pool_share(0) - 0.55).abs() < 1e-9);
        // Remaining 0.45 split 2:1 between B (0.4) and tail (0.2).
        assert!((pop.effective_pool_share(1) - 0.30).abs() < 1e-9);
        assert!((pop.effective_tail_share() - 0.15).abs() < 1e-9);
    }

    #[test]
    fn schedule_changes_take_effect_on_refresh() {
        let mut p = pool("A", 0.8);
        p.schedule = vec![
            SharePoint {
                day: 0.0,
                share: 0.8,
            },
            SharePoint {
                day: 100.0,
                share: 0.2,
            },
        ];
        let mut pop = MinerPopulation::new(vec![p, pool("B", 0.2)], tail(0, 0.0));
        assert!((pop.effective_pool_share(0) - 0.8).abs() < 1e-9);
        pop.refresh(100.0, &BTreeMap::new());
        assert!((pop.effective_pool_share(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tail_only_population() {
        let pop = MinerPopulation::new(vec![], tail(500, 1.0));
        let mut rng = SimRng::new(31);
        for _ in 0..100 {
            assert!(matches!(pop.sample(&mut rng), MinerRef::Tail(_)));
        }
    }

    #[test]
    fn pool_only_population() {
        let pop = MinerPopulation::new(vec![pool("A", 1.0)], tail(0, 0.0));
        let mut rng = SimRng::new(32);
        for _ in 0..100 {
            assert_eq!(pop.sample(&mut rng), MinerRef::Pool(0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one miner")]
    fn empty_population_panics() {
        MinerPopulation::new(vec![], tail(0, 0.0));
    }

    #[test]
    fn tail_rank_weights_favour_low_ranks() {
        let pop = MinerPopulation::new(vec![], tail(1000, 1.0));
        let mut rng = SimRng::new(33);
        let mut low = 0u32;
        let mut high = 0u32;
        for _ in 0..50_000 {
            if let MinerRef::Tail(i) = pop.sample(&mut rng) {
                if i < 10 {
                    low += 1;
                } else if i >= 500 {
                    high += 1;
                }
            }
        }
        // First 10 ranks together outweigh the entire back half.
        assert!(low > high, "low {low} high {high}");
    }

    #[test]
    fn pool_index_lookup() {
        let pop = MinerPopulation::new(vec![pool("A", 0.5), pool("B", 0.5)], tail(0, 0.0));
        assert_eq!(pop.pool_index("B"), Some(1));
        assert_eq!(pop.pool_index("C"), None);
    }

    #[test]
    fn drift_changes_effective_shares() {
        let mut a = pool("A", 0.5);
        a.drift = DriftState::new(0.5, 0.0);
        let mut pop = MinerPopulation::new(vec![a, pool("B", 0.5)], tail(0, 0.0));
        let before = pop.effective_pool_share(0);
        let mut rng = SimRng::new(34);
        // Step drift until the factor moves materially.
        for _ in 0..5 {
            pop.step_drift(&mut rng);
        }
        pop.refresh(0.0, &BTreeMap::new());
        let after = pop.effective_pool_share(0);
        assert!((after - before).abs() > 1e-3, "drift had no effect");
    }
}
