//! Stream-level summaries used to calibrate scenarios.
//!
//! These are simulator-facing statistics (block rates, realized producer
//! shares, producer-population sizes) — the decentralization *metrics*
//! live in `blockdec-core`; the calibration tests that tie the two
//! together are the workspace integration tests and EXPERIMENTS.md.

use crate::generator::GeneratedStream;
use blockdec_chain::Timestamp;
use std::collections::{BTreeMap, HashSet};

/// Summary statistics of a generated stream.
#[derive(Clone, Debug)]
pub struct StreamSummary {
    /// Total blocks.
    pub blocks: u64,
    /// Number of distinct calendar days covered.
    pub days: u32,
    /// Mean blocks per covered day.
    pub blocks_per_day: f64,
    /// Realized share of total credits per producer name, descending.
    pub producer_shares: Vec<(String, f64)>,
    /// Distinct producers over the whole stream.
    pub distinct_producers: usize,
    /// Mean distinct producers per day.
    pub mean_producers_per_day: f64,
}

impl StreamSummary {
    /// Combined share of the top `k` producers.
    pub fn top_share(&self, k: usize) -> f64 {
        self.producer_shares.iter().take(k).map(|(_, s)| s).sum()
    }

    /// Realized share of a named producer (0.0 when absent).
    pub fn share_of(&self, name: &str) -> f64 {
        self.producer_shares
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    }
}

/// Summarize a stream relative to a calendar origin.
pub fn summarize(stream: &GeneratedStream, origin: Timestamp) -> StreamSummary {
    let mut credits: BTreeMap<u32, f64> = BTreeMap::new();
    let mut per_day: BTreeMap<i64, HashSet<u32>> = BTreeMap::new();
    let mut total = 0.0f64;
    for b in &stream.attributed {
        let day = b.timestamp.day_index(origin);
        let day_set = per_day.entry(day).or_default();
        for c in &b.credits {
            *credits.entry(c.producer.0).or_insert(0.0) += c.weight;
            total += c.weight;
            day_set.insert(c.producer.0);
        }
    }
    let mut producer_shares: Vec<(String, f64)> = credits
        .iter()
        .map(|(&id, &w)| {
            let name = stream
                .registry
                .name(blockdec_chain::ProducerId(id))
                .unwrap_or("<unknown>")
                .to_string();
            (name, if total > 0.0 { w / total } else { 0.0 })
        })
        .collect();
    producer_shares.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let days = per_day.len() as u32;
    let mean_producers_per_day = if days == 0 {
        0.0
    } else {
        per_day.values().map(|s| s.len() as f64).sum::<f64>() / f64::from(days)
    };

    StreamSummary {
        blocks: stream.attributed.len() as u64,
        days,
        blocks_per_day: if days == 0 {
            0.0
        } else {
            stream.attributed.len() as f64 / f64::from(days)
        },
        producer_shares,
        distinct_producers: credits.len(),
        mean_producers_per_day,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn bitcoin_short_run_summary_is_plausible() {
        let s = Scenario::bitcoin_2019().truncated(7);
        let stream = s.generate();
        let sum = summarize(&stream, Timestamp::year_2019_start());
        // Clock jitter can push one reported timestamp past the boundary,
        // spilling a block into an eighth calendar day.
        assert!((7..=8).contains(&sum.days), "days {}", sum.days);
        assert!(
            (120.0..170.0).contains(&sum.blocks_per_day),
            "{}",
            sum.blocks_per_day
        );
        // Early-year regime: BTC.com leads at ~14%.
        let lead = sum.share_of("BTC.com");
        assert!((0.07..0.25).contains(&lead), "BTC.com share {lead}");
        // A healthy tail of unknown producers exists.
        assert!(sum.distinct_producers > 50, "{}", sum.distinct_producers);
        // Shares sum to 1.
        let total: f64 = sum.producer_shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ethereum_short_run_summary_is_plausible() {
        let mut s = Scenario::ethereum_2019().truncated(2);
        s.limit_blocks = Some(12_000);
        let stream = s.generate();
        let sum = summarize(&stream, Timestamp::year_2019_start());
        let ethermine = sum.share_of("Ethermine");
        assert!((0.18..0.34).contains(&ethermine), "Ethermine {ethermine}");
        let spark = sum.share_of("SparkPool");
        assert!(spark > 0.12, "SparkPool {spark}");
        // Top-2 below the 51% line on average (Nakamoto 3 territory).
        assert!(sum.top_share(3) >= 0.50, "top3 {}", sum.top_share(3));
    }

    #[test]
    fn top_share_is_monotone() {
        let s = Scenario::bitcoin_2019().truncated(3);
        let sum = summarize(&s.generate(), Timestamp::year_2019_start());
        let mut prev = 0.0;
        for k in 1..10 {
            let t = sum.top_share(k);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn empty_stream_summary() {
        let mut s = Scenario::bitcoin_2019().truncated(1);
        s.limit_blocks = Some(0);
        let sum = summarize(&s.generate(), Timestamp::year_2019_start());
        assert_eq!(sum.blocks, 0);
        assert_eq!(sum.days, 0);
        assert_eq!(sum.distinct_producers, 0);
        assert_eq!(sum.top_share(5), 0.0);
    }
}
