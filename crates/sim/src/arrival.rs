//! Block arrival process: difficulty-coupled Poisson arrivals plus
//! miner-declared timestamp jitter.
//!
//! Arrival times are exponential with mean `difficulty / hashrate`; the
//! difficulty state adjusts per the chain's retarget rule, closing the
//! loop. Hashrate follows an exponential growth curve over the scenario
//! (Bitcoin's 2019 hashrate roughly doubled, which is what pushed the
//! year to 54,231 blocks instead of the nominal 52,560).
//!
//! Declared timestamps differ from arrival times on Bitcoin: miners stamp
//! with clock error, so a small fraction of blocks carry timestamps
//! earlier than their parent's (legal under median-time-past). Ethereum
//! enforces strict monotonicity, so jitter there only stretches gaps.

use crate::difficulty::DifficultyState;
use crate::rng::SimRng;
use blockdec_chain::ChainKind;

/// One produced block arrival.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Arrival {
    /// True arrival time (seconds since epoch).
    pub arrival_time: i64,
    /// Miner-declared timestamp (what goes in the block header).
    pub declared_time: i64,
    /// Difficulty at this block, rounded to integer units.
    pub difficulty: u64,
}

/// Parameters of the arrival process.
#[derive(Clone, Debug)]
pub struct ArrivalConfig {
    /// Chain (controls timestamp-jitter legality).
    pub chain: ChainKind,
    /// Hashrate at day 0 (arbitrary units; difficulty is calibrated
    /// against it).
    pub base_hashrate: f64,
    /// Total multiplicative hashrate growth across `days` (e.g. 2.2 =
    /// ends the year at 2.2x).
    pub growth: f64,
    /// Scenario length in days (for the growth exponent).
    pub days: f64,
    /// Enable miner clock jitter on declared timestamps.
    pub timestamp_jitter: bool,
}

/// Stateful arrival generator.
#[derive(Clone, Debug)]
pub struct ArrivalProcess {
    config: ArrivalConfig,
    difficulty: DifficultyState,
    start_time: i64,
    current_time: f64,
    last_declared: i64,
    recent_declared: Vec<i64>,
}

impl ArrivalProcess {
    /// Start the process at `start_time`.
    pub fn new(
        config: ArrivalConfig,
        difficulty: DifficultyState,
        start_time: i64,
    ) -> ArrivalProcess {
        ArrivalProcess {
            config,
            difficulty,
            start_time,
            current_time: start_time as f64,
            last_declared: start_time,
            recent_declared: Vec::with_capacity(11),
        }
    }

    /// Hashrate at an absolute time, following the growth curve.
    pub fn hashrate_at(&self, time: f64) -> f64 {
        let day = (time - self.start_time as f64) / 86_400.0;
        let frac = (day / self.config.days).clamp(0.0, 1.0);
        self.config.base_hashrate * self.config.growth.powf(frac)
    }

    /// Median of recent declared timestamps (Bitcoin median-time-past).
    fn median_time_past(&self) -> i64 {
        if self.recent_declared.is_empty() {
            return self.start_time;
        }
        let mut v = self.recent_declared.clone();
        v.sort_unstable();
        v[v.len() / 2]
    }

    /// Produce the next block arrival.
    pub fn next_block(&mut self, rng: &mut SimRng) -> Arrival {
        let hashrate = self.hashrate_at(self.current_time);
        let mean = self.difficulty.expected_interval(hashrate);
        // Inter-arrival of at least one second keeps integer timestamps
        // strictly ordered for Ethereum.
        let dt = rng.exponential(mean).max(1.0);
        self.current_time += dt;
        let arrival = self.current_time as i64;
        self.difficulty.on_block(arrival, dt);

        let declared = if self.config.timestamp_jitter {
            match self.config.chain {
                ChainKind::Bitcoin => {
                    // ~5% of blocks declare up to 2 minutes in the past,
                    // bounded below by median-time-past + 1 so validation
                    // holds; the rest declare up to 30s in the future.
                    let jitter = if rng.chance(0.05) {
                        -(rng.below(120) as i64)
                    } else {
                        rng.below(30) as i64
                    };
                    (arrival + jitter).max(self.median_time_past() + 1)
                }
                ChainKind::Ethereum => arrival.max(self.last_declared + 1),
            }
        } else {
            match self.config.chain {
                ChainKind::Bitcoin => arrival,
                ChainKind::Ethereum => arrival.max(self.last_declared + 1),
            }
        };

        self.last_declared = declared;
        self.recent_declared.push(declared);
        if self.recent_declared.len() > 11 {
            self.recent_declared.remove(0);
        }

        Arrival {
            arrival_time: arrival,
            declared_time: declared,
            difficulty: self.difficulty.difficulty().round().max(1.0) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdec_chain::params::RetargetRule;

    fn btc_process(jitter: bool) -> ArrivalProcess {
        let cfg = ArrivalConfig {
            chain: ChainKind::Bitcoin,
            base_hashrate: 1.0,
            growth: 1.0,
            days: 365.0,
            timestamp_jitter: jitter,
        };
        let diff = DifficultyState::new(RetargetRule::Epoch { interval: 2016 }, 600.0, 600.0, 0);
        ArrivalProcess::new(cfg, diff, 0)
    }

    #[test]
    fn mean_interval_near_target() {
        let mut rng = SimRng::new(20);
        let mut p = btc_process(false);
        let n = 20_000;
        let mut last = 0i64;
        for _ in 0..n {
            last = p.next_block(&mut rng).arrival_time;
        }
        let mean = last as f64 / n as f64;
        assert!((mean - 600.0).abs() < 15.0, "mean {mean}");
    }

    #[test]
    fn growth_speeds_up_blocks() {
        let mut rng = SimRng::new(21);
        let cfg = ArrivalConfig {
            chain: ChainKind::Bitcoin,
            base_hashrate: 1.0,
            growth: 4.0,
            days: 10.0,
            timestamp_jitter: false,
        };
        // Epoch so long it never retargets in this test: pure growth.
        let diff = DifficultyState::new(
            RetargetRule::Epoch {
                interval: 1_000_000,
            },
            600.0,
            600.0,
            0,
        );
        let mut p = ArrivalProcess::new(cfg, diff, 0);
        let mut times = Vec::new();
        for _ in 0..3000 {
            times.push(p.next_block(&mut rng).arrival_time);
        }
        // Average interval over the last 500 blocks is well below the
        // first 500's.
        let early = (times[499] - times[0]) as f64 / 499.0;
        let n = times.len();
        let late = (times[n - 1] - times[n - 500]) as f64 / 499.0;
        assert!(late < early * 0.7, "early {early} late {late}");
    }

    #[test]
    fn ethereum_declared_times_strictly_increase() {
        let mut rng = SimRng::new(22);
        let cfg = ArrivalConfig {
            chain: ChainKind::Ethereum,
            base_hashrate: 1.0,
            growth: 1.3,
            days: 365.0,
            timestamp_jitter: true,
        };
        let diff = DifficultyState::new(RetargetRule::PerBlock, 14.4, 14.4, 0);
        let mut p = ArrivalProcess::new(cfg, diff, 0);
        let mut last = i64::MIN;
        for _ in 0..5000 {
            let a = p.next_block(&mut rng);
            assert!(a.declared_time > last);
            last = a.declared_time;
        }
    }

    #[test]
    fn bitcoin_jitter_produces_some_backward_steps_but_respects_mtp() {
        let mut rng = SimRng::new(23);
        let mut p = btc_process(true);
        let mut declared = Vec::new();
        for _ in 0..5000 {
            declared.push(p.next_block(&mut rng).declared_time);
        }
        let backward = declared.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(backward > 0, "expected some non-monotone declared times");
        // And each declared time exceeds the median of the prior 11.
        for i in 11..declared.len() {
            let mut window: Vec<i64> = declared[i - 11..i].to_vec();
            window.sort_unstable();
            let mtp = window[window.len() / 2];
            assert!(declared[i] > mtp, "at {i}: {} <= {mtp}", declared[i]);
        }
    }

    #[test]
    fn difficulty_is_positive_and_tracks() {
        let mut rng = SimRng::new(24);
        let mut p = btc_process(false);
        for _ in 0..1000 {
            assert!(p.next_block(&mut rng).difficulty >= 1);
        }
    }

    #[test]
    fn determinism() {
        let mut r1 = SimRng::new(25);
        let mut r2 = SimRng::new(25);
        let mut p1 = btc_process(true);
        let mut p2 = btc_process(true);
        for _ in 0..500 {
            assert_eq!(p1.next_block(&mut r1), p2.next_block(&mut r2));
        }
    }
}
