//! Continuous head-following feed: the scenario's block stream with
//! seeded short forks and reorgs near the head.
//!
//! [`ChainFeed`] wraps the ordinary [`crate::generator::BlockGenerator`]
//! and emits its blocks one at a time, occasionally preceding a canonical
//! block by a short competing branch that attaches to the previous
//! canonical block. A consumer that tracks the head (the `ChainView` in
//! `blockdec-ingest`) first extends onto the fork, then rolls it back
//! when the canonical block arrives — exactly the uncle/stale-block churn
//! a live node sees near the tip.
//!
//! The canonical chain is **untouched**: the wrapped generator's RNG
//! streams are never consumed by the fork schedule (it draws from its own
//! forked [`SimRng`]), so the subsequence of canonical blocks a feed
//! emits is bitwise identical to [`Scenario::generate_blocks`] for the
//! same scenario. That identity is what the live-follow equivalence
//! harness asserts end to end.

use crate::generator::BlockGenerator;
use crate::rng::SimRng;
use crate::scenario::Scenario;
use blockdec_chain::hash::splitmix64;
use blockdec_chain::{Block, BlockHash};
use std::collections::VecDeque;

/// Seed domain separating fork-branch hashes from canonical hashes.
const FORK_HASH_DOMAIN: u64 = 0xf04b_ed00_0000_0000;

/// Knobs for the fork/reorg schedule of a [`ChainFeed`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FeedConfig {
    /// Mean spacing between fork events, in canonical blocks. `0`
    /// disables forks entirely (the feed degenerates to the plain
    /// generator).
    pub fork_every: u64,
    /// Longest competing branch the feed may emit — the deepest reorg a
    /// consumer will ever have to apply. Keep this at or below the
    /// consumer's finality depth.
    pub max_fork_len: usize,
    /// Extra seed folded into the fork schedule so the same scenario can
    /// replay different fork histories over the identical canonical
    /// chain.
    pub seed: u64,
}

impl Default for FeedConfig {
    fn default() -> FeedConfig {
        FeedConfig {
            fork_every: 50,
            max_fork_len: 3,
            seed: 0,
        }
    }
}

/// Counters describing what a [`ChainFeed`] has emitted so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FeedStats {
    /// Canonical blocks emitted (the blocks of the final chain).
    pub canonical_blocks: u64,
    /// Fork branches emitted (each implies one reorg at the consumer).
    pub forks: u64,
    /// Total blocks across all fork branches.
    pub fork_blocks: u64,
    /// Length of the longest branch emitted.
    pub deepest_fork: usize,
}

/// Iterator of head events: canonical blocks interleaved with short
/// competing branches. See the module docs for the contract.
pub struct ChainFeed {
    inner: BlockGenerator,
    rng: SimRng,
    config: FeedConfig,
    /// Blocks staged for emission (fork branch, then the canonical block
    /// that displaces it).
    queue: VecDeque<Block>,
    /// Last canonical block emitted or staged — fork branches attach to
    /// its parent side.
    last_canonical: Option<Block>,
    /// Canonical blocks remaining until the next fork event.
    until_fork: u64,
    /// Distinct branch counter, folded into fork hashes so two branches
    /// at the same height never collide.
    branches: u64,
    stats: FeedStats,
}

impl ChainFeed {
    fn new(scenario: &Scenario, config: FeedConfig) -> ChainFeed {
        // An independent RNG stream: the generator owns its own root
        // (forks 1..3), so fork-schedule draws never perturb the
        // canonical chain.
        let mut rng = SimRng::new(splitmix64(scenario.seed ^ FORK_HASH_DOMAIN) ^ config.seed);
        let until_fork = next_gap(&mut rng, config.fork_every);
        ChainFeed {
            inner: scenario.iter(),
            rng,
            config,
            queue: VecDeque::new(),
            last_canonical: None,
            until_fork,
            branches: 0,
            stats: FeedStats::default(),
        }
    }

    /// What the feed has emitted so far.
    pub fn stats(&self) -> FeedStats {
        self.stats
    }

    /// Build a competing branch of `len` blocks that attaches where
    /// `canonical` does: branch block `i` sits at `canonical.height + i`,
    /// chained from the previous canonical head.
    fn fork_branch(&mut self, canonical: &Block, prev_hash: BlockHash, len: usize) -> Vec<Block> {
        self.branches += 1;
        let domain = FORK_HASH_DOMAIN ^ splitmix64(self.branches);
        let mut parent = prev_hash;
        let mut branch = Vec::with_capacity(len);
        for i in 0..len {
            let mut b = canonical.clone();
            b.height = canonical.height + i as u64;
            b.hash = BlockHash::digest(domain, b.height);
            b.parent = parent;
            // A stale branch's miner clock runs a touch ahead.
            b.timestamp = blockdec_chain::Timestamp(canonical.timestamp.secs() + 1 + i as i64);
            parent = b.hash;
            branch.push(b);
        }
        branch
    }
}

/// Draw the gap (in canonical blocks) until the next fork: uniform in
/// `1..=2·fork_every − 1`, mean `fork_every`. `u64::MAX` disables forks.
fn next_gap(rng: &mut SimRng, fork_every: u64) -> u64 {
    if fork_every == 0 {
        return u64::MAX;
    }
    1 + rng.below(2 * fork_every - 1)
}

impl Iterator for ChainFeed {
    type Item = Block;

    fn next(&mut self) -> Option<Block> {
        if let Some(b) = self.queue.pop_front() {
            return Some(b);
        }
        let canonical = self.inner.next()?;
        let fork_due = self.config.max_fork_len > 0 && self.until_fork == 0;
        if let (true, Some(prev)) = (fork_due, self.last_canonical.clone()) {
            self.until_fork = next_gap(&mut self.rng, self.config.fork_every);
            let len = 1 + self.rng.below(self.config.max_fork_len as u64) as usize;
            for b in self.fork_branch(&canonical, prev.hash, len) {
                self.queue.push_back(b);
            }
            self.stats.forks += 1;
            self.stats.fork_blocks += len as u64;
            self.stats.deepest_fork = self.stats.deepest_fork.max(len);
            self.queue.push_back(canonical.clone());
            self.last_canonical = Some(canonical);
            self.stats.canonical_blocks += 1;
            return self.queue.pop_front();
        }
        self.until_fork = self.until_fork.saturating_sub(1);
        self.last_canonical = Some(canonical.clone());
        self.stats.canonical_blocks += 1;
        Some(canonical)
    }
}

impl Scenario {
    /// Continuous head-following feed over this scenario: the canonical
    /// block stream of [`Scenario::generate_blocks`], interleaved with
    /// seeded short fork branches per `config`. The canonical
    /// subsequence is bitwise identical to the batch stream.
    pub fn stream_events(&self, config: FeedConfig) -> ChainFeed {
        ChainFeed::new(self, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        let mut s = Scenario::bitcoin_2019().truncated(3);
        s.limit_blocks = Some(400);
        s
    }

    /// Split a feed's output into (canonical chain, fork blocks) by
    /// replaying head semantics: a block at height h displaces anything
    /// previously held at h and above.
    fn replay_head(events: &[Block]) -> Vec<Block> {
        let mut chain: Vec<Block> = Vec::new();
        for b in events {
            while chain.last().is_some_and(|t: &Block| t.height >= b.height) {
                chain.pop();
            }
            if let Some(t) = chain.last() {
                assert_eq!(
                    t.hash, b.parent,
                    "event does not attach at height {}",
                    b.height
                );
            }
            chain.push(b.clone());
        }
        chain
    }

    #[test]
    fn canonical_subsequence_is_bitwise_identical_to_batch() {
        let s = scenario();
        let batch = s.generate_blocks();
        let events: Vec<Block> = s
            .stream_events(FeedConfig {
                fork_every: 20,
                max_fork_len: 3,
                seed: 5,
            })
            .collect();
        assert!(events.len() > batch.len(), "forks must add events");
        assert_eq!(replay_head(&events), batch);
    }

    #[test]
    fn zero_fork_every_degenerates_to_generator() {
        let s = scenario();
        let events: Vec<Block> = s
            .stream_events(FeedConfig {
                fork_every: 0,
                ..FeedConfig::default()
            })
            .collect();
        assert_eq!(events, s.generate_blocks());
    }

    #[test]
    fn fork_schedule_is_deterministic_per_seed() {
        let s = scenario();
        let cfg = FeedConfig {
            fork_every: 15,
            max_fork_len: 4,
            seed: 9,
        };
        let a: Vec<Block> = s.stream_events(cfg).collect();
        let b: Vec<Block> = s.stream_events(cfg).collect();
        assert_eq!(a, b);
        let c: Vec<Block> = s.stream_events(FeedConfig { seed: 10, ..cfg }).collect();
        assert_ne!(a, c, "fork seed must vary the event stream");
        assert_eq!(replay_head(&a), replay_head(&c), "canonical chain must not");
    }

    #[test]
    fn fork_lengths_respect_the_cap_and_stats_add_up() {
        let s = scenario();
        let mut feed = s.stream_events(FeedConfig {
            fork_every: 10,
            max_fork_len: 3,
            seed: 1,
        });
        let events: Vec<Block> = feed.by_ref().collect();
        let stats = feed.stats();
        assert!(stats.forks > 0, "expected forks in 400 blocks");
        assert!(stats.deepest_fork <= 3);
        assert_eq!(
            stats.canonical_blocks + stats.fork_blocks,
            events.len() as u64
        );
        assert_eq!(stats.canonical_blocks as usize, replay_head(&events).len());
    }

    #[test]
    fn fork_hashes_never_collide_with_canonical_ones() {
        let s = scenario();
        let events: Vec<Block> = s
            .stream_events(FeedConfig {
                fork_every: 10,
                max_fork_len: 3,
                seed: 2,
            })
            .collect();
        let mut hashes: Vec<BlockHash> = events.iter().map(|b| b.hash).collect();
        let n = hashes.len();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), n, "duplicate block hash in feed");
    }
}
