//! Injected events: the scripted anomalies the paper analyses.
//!
//! * [`EventConfig::MultiCoinbase`] — a block whose coinbase pays dozens
//!   of independent addresses (P2Pool-style payout). Two such blocks
//!   (>80 and >90 addresses) on Jan 14 are the paper's day-14 case study
//!   (§II-C1d): under per-address attribution they crater the daily Gini
//!   (≈0.34) and spike the daily entropy (≈6.2) and Nakamoto coefficient.
//! * [`EventConfig::DominantShare`] — a pool's hashrate share is forced to
//!   a value over a day range. A 4–5 day burst straddling a week boundary
//!   reproduces the §III-B cross-interval anomaly that sliding windows
//!   reveal and fixed weekly windows dilute (Fig. 13, day 60).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A scripted event in a scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum EventConfig {
    /// On `day`, the `block_of_day`-th block pays `addresses` independent
    /// coinbase addresses instead of its miner's.
    MultiCoinbase {
        /// Day offset from scenario start (0-based).
        day: u32,
        /// Which block of that day is replaced (0-based; clamped to the
        /// day's actual block count by the generator).
        block_of_day: u32,
        /// Number of independent payout addresses.
        addresses: u32,
    },
    /// Force a pool's effective share to `share` for days in
    /// `start_day..end_day`.
    DominantShare {
        /// Pool name (must exist in the scenario's pool list).
        pool: String,
        /// First affected day (inclusive).
        start_day: u32,
        /// First unaffected day (exclusive).
        end_day: u32,
        /// Forced normalized share in (0, 1).
        share: f64,
    },
}

/// Pre-indexed view of a scenario's events for fast per-day queries.
#[derive(Clone, Debug, Default)]
pub struct EventSchedule {
    multi_coinbase: BTreeMap<u32, Vec<(u32, u32)>>,
    dominant: Vec<(String, u32, u32, f64)>,
}

impl EventSchedule {
    /// Index a list of event configs.
    pub fn new(events: &[EventConfig]) -> EventSchedule {
        let mut s = EventSchedule::default();
        for e in events {
            match e {
                EventConfig::MultiCoinbase {
                    day,
                    block_of_day,
                    addresses,
                } => {
                    s.multi_coinbase
                        .entry(*day)
                        .or_default()
                        .push((*block_of_day, *addresses));
                }
                EventConfig::DominantShare {
                    pool,
                    start_day,
                    end_day,
                    share,
                } => {
                    s.dominant
                        .push((pool.clone(), *start_day, *end_day, *share));
                }
            }
        }
        // Deterministic order within a day.
        for v in s.multi_coinbase.values_mut() {
            v.sort_unstable();
        }
        s
    }

    /// Multi-coinbase injections for a day: `(block_of_day, addresses)`,
    /// sorted by block offset.
    pub fn multi_coinbase_on(&self, day: u32) -> &[(u32, u32)] {
        self.multi_coinbase
            .get(&day)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Share overrides in force on a day: pool name → forced share.
    pub fn share_overrides_on(&self, day: u32) -> BTreeMap<&str, f64> {
        let mut out = BTreeMap::new();
        for (pool, start, end, share) in &self.dominant {
            if (*start..*end).contains(&day) {
                out.insert(pool.as_str(), *share);
            }
        }
        out
    }

    /// True when no events are scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.multi_coinbase.is_empty() && self.dominant.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_multi_coinbase_by_day() {
        let s = EventSchedule::new(&[
            EventConfig::MultiCoinbase {
                day: 13,
                block_of_day: 80,
                addresses: 95,
            },
            EventConfig::MultiCoinbase {
                day: 13,
                block_of_day: 40,
                addresses: 85,
            },
            EventConfig::MultiCoinbase {
                day: 20,
                block_of_day: 10,
                addresses: 30,
            },
        ]);
        assert_eq!(s.multi_coinbase_on(13), &[(40, 85), (80, 95)]);
        assert_eq!(s.multi_coinbase_on(20), &[(10, 30)]);
        assert!(s.multi_coinbase_on(14).is_empty());
    }

    #[test]
    fn dominant_share_day_ranges() {
        let s = EventSchedule::new(&[EventConfig::DominantShare {
            pool: "BTC.com".into(),
            start_day: 59,
            end_day: 63,
            share: 0.53,
        }]);
        assert!(s.share_overrides_on(58).is_empty());
        assert_eq!(s.share_overrides_on(59).get("BTC.com"), Some(&0.53));
        assert_eq!(s.share_overrides_on(62).get("BTC.com"), Some(&0.53));
        assert!(s.share_overrides_on(63).is_empty());
    }

    #[test]
    fn overlapping_dominant_events_last_wins_is_stable() {
        let s = EventSchedule::new(&[
            EventConfig::DominantShare {
                pool: "A".into(),
                start_day: 0,
                end_day: 10,
                share: 0.4,
            },
            EventConfig::DominantShare {
                pool: "A".into(),
                start_day: 5,
                end_day: 15,
                share: 0.6,
            },
        ]);
        // Later config wins on the overlap (map insert order).
        assert_eq!(s.share_overrides_on(7).get("A"), Some(&0.6));
        assert_eq!(s.share_overrides_on(2).get("A"), Some(&0.4));
        assert_eq!(s.share_overrides_on(12).get("A"), Some(&0.6));
    }

    #[test]
    fn two_pools_can_be_forced_simultaneously() {
        let s = EventSchedule::new(&[
            EventConfig::DominantShare {
                pool: "A".into(),
                start_day: 0,
                end_day: 5,
                share: 0.3,
            },
            EventConfig::DominantShare {
                pool: "B".into(),
                start_day: 0,
                end_day: 5,
                share: 0.3,
            },
        ]);
        let o = s.share_overrides_on(1);
        assert_eq!(o.len(), 2);
    }

    #[test]
    fn empty_schedule() {
        let s = EventSchedule::new(&[]);
        assert!(s.is_empty());
        assert!(s.multi_coinbase_on(0).is_empty());
        assert!(s.share_overrides_on(0).is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let events = vec![
            EventConfig::MultiCoinbase {
                day: 13,
                block_of_day: 40,
                addresses: 85,
            },
            EventConfig::DominantShare {
                pool: "X".into(),
                start_day: 1,
                end_day: 2,
                share: 0.5,
            },
        ];
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<EventConfig> = serde_json::from_str(&json).unwrap();
        assert_eq!(events, back);
    }
}
