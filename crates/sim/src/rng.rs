//! Deterministic randomness and the distributions the simulator needs.
//!
//! Everything derives from a single seeded xoshiro256++ generator,
//! implemented inline so the simulator has no external RNG dependency;
//! the distributions (exponential, standard normal, Pareto weights) are
//! implemented by inversion / Box–Muller.

/// Simulator RNG: a seeded xoshiro256++ core plus distribution helpers.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: [u64; 4],
}

/// splitmix64 step, used to expand the seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Seeded construction; the same seed yields the same stream.
    pub fn new(seed: u64) -> SimRng {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Next raw 64-bit draw (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut n = [s0, s1, s2, s3];
        n[2] ^= n[0];
        n[3] ^= n[1];
        n[1] ^= n[2];
        n[0] ^= n[3];
        n[2] ^= t;
        n[3] = n[3].rotate_left(45);
        self.state = n;
        result
    }

    /// Derive an independent child RNG for a named sub-stream, so adding
    /// draws in one component does not perturb another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base: u64 = self.next_u64();
        SimRng::new(base ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Uniform in [0, 1).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Widening-multiply range reduction (Lemire); bias is < 2^-64
        // and irrelevant for simulation, so no rejection loop.
        (((u128::from(self.next_u64())) * u128::from(n)) >> 64) as u64
    }

    /// Exponential with the given mean (inversion method).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // 1 - unit() is in (0, 1], so ln is finite.
        -mean * (1.0 - self.unit()).ln()
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Sample an index from cumulative weights (ascending, last = total).
    /// Returns `cum.len() - 1` on boundary rounding.
    pub fn pick_cumulative(&mut self, cum: &[f64]) -> usize {
        assert!(!cum.is_empty(), "empty cumulative weights");
        let total = cum[cum.len() - 1];
        debug_assert!(total > 0.0, "zero total weight");
        let x = self.unit() * total;
        match cum.binary_search_by(|c| c.total_cmp(&x)) {
            Ok(i) => (i + 1).min(cum.len() - 1),
            Err(i) => i.min(cum.len() - 1),
        }
    }
}

/// Pareto-shaped rank weights: `w_i ∝ (i + 1)^(-alpha)` for `i` in `0..n`.
/// Used for the solo-miner long tail — a few persistent small miners, many
/// one-off ones.
pub fn pareto_rank_weights(n: usize, alpha: f64) -> Vec<f64> {
    (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect()
}

/// Turn weights into a cumulative vector for [`SimRng::pick_cumulative`].
pub fn cumulative(weights: &[f64]) -> Vec<f64> {
    let mut cum = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        debug_assert!(w >= 0.0 && w.is_finite());
        acc += w;
        cum.push(acc);
    }
    cum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
        let mut c = SimRng::new(43);
        assert_ne!(a.unit().to_bits(), c.unit().to_bits());
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut root1 = SimRng::new(7);
        let mut root2 = SimRng::new(7);
        let mut f1 = root1.fork(1);
        let mut f2 = root2.fork(1);
        assert_eq!(f1.unit().to_bits(), f2.unit().to_bits());
        let mut g1 = root1.fork(2);
        assert_ne!(f1.unit().to_bits(), g1.unit().to_bits());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(1);
        let n = 50_000;
        let mean = 600.0;
        let total: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - mean).abs() < mean * 0.02,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            assert!(rng.exponential(10.0) > 0.0);
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(3);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn pick_cumulative_respects_weights() {
        let mut rng = SimRng::new(4);
        let cum = cumulative(&[1.0, 3.0, 6.0]); // shares 10% / 30% / 60%
        let mut counts = [0u32; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.pick_cumulative(&cum)] += 1;
        }
        let share = |i: usize| counts[i] as f64 / n as f64;
        assert!((share(0) - 0.1).abs() < 0.01);
        assert!((share(1) - 0.3).abs() < 0.01);
        assert!((share(2) - 0.6).abs() < 0.01);
    }

    #[test]
    fn pick_cumulative_single_bucket() {
        let mut rng = SimRng::new(5);
        let cum = cumulative(&[2.5]);
        for _ in 0..100 {
            assert_eq!(rng.pick_cumulative(&cum), 0);
        }
    }

    #[test]
    fn pareto_weights_decay() {
        let w = pareto_rank_weights(100, 0.8);
        assert_eq!(w.len(), 100);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
        assert!((w[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_is_monotone() {
        let c = cumulative(&[0.5, 0.0, 2.0]);
        assert_eq!(c, vec![0.5, 0.5, 2.5]);
    }

    #[test]
    fn below_bounds() {
        let mut rng = SimRng::new(6);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(8);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.1)));
    }
}
