//! Scenario configuration and the calibrated 2019 presets.
//!
//! A [`Scenario`] fully describes a simulated measurement year:
//! population (pools + tail), arrival dynamics, events, and attribution
//! mode. Scenarios serialize to JSON so experiments are reproducible
//! artifacts.
//!
//! The presets encode the 2019 hashrate landscape the paper measured:
//!
//! * [`Scenario::bitcoin_2019`] — ~18 named pools with an early-year
//!   flatter regime (more unknown/solo mining, the paper's "higher and
//!   more fluctuating decentralization in the first 50 days") that
//!   consolidates by day ~90; multi-coinbase anomaly blocks on day 13
//!   (Jan 14, §II-C1d) and a handful of other early days; a 4-day
//!   dominant-miner burst straddling the week-8/9 boundary around day 60
//!   (the Fig. 13 cross-interval anomaly).
//! * [`Scenario::ethereum_2019`] — the stable, more concentrated Ethereum
//!   pool set (Ethermine + SparkPool ≈ half the network), no events —
//!   the paper finds "no abnormal value observed during the year".

use crate::events::EventConfig;
use crate::hashrate::SharePoint;
use blockdec_chain::{AttributionMode, ChainKind, Timestamp};
use serde::{Deserialize, Serialize};

/// A pool in a scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Canonical name (also used for event targeting).
    pub name: String,
    /// Coinbase marker / extra_data the pool stamps on its blocks.
    pub tag: Option<String>,
    /// Known payout address (Ethereum pools); synthesized when `None`.
    pub address: Option<String>,
    /// Intended share schedule (piecewise linear over days).
    pub schedule: Vec<SharePoint>,
    /// Daily log-sigma of the luck drift.
    pub drift_sigma: f64,
    /// Daily mean-reversion of the luck drift.
    pub drift_reversion: f64,
}

/// The solo-miner long tail of a scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TailConfig {
    /// Number of distinct solo miners.
    pub miners: u32,
    /// Pareto exponent of the rank weights.
    pub alpha: f64,
    /// Aggregate tail share schedule.
    pub schedule: Vec<SharePoint>,
}

/// A complete simulation scenario.
///
/// ```
/// use blockdec_sim::Scenario;
/// // Two deterministic days of calibrated Bitcoin 2019.
/// let scenario = Scenario::bitcoin_2019().truncated(2);
/// let stream = scenario.generate();
/// assert!((250..330).contains(&stream.attributed.len()));
/// assert!(stream.registry.get("F2Pool").is_some());
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable scenario name.
    pub name: String,
    /// Which chain is being simulated.
    pub chain: ChainKind,
    /// RNG seed; same seed + config → identical stream.
    pub seed: u64,
    /// Scenario start (seconds since epoch; presets use 2019-01-01).
    pub start_time: i64,
    /// Length in days.
    pub days: u32,
    /// Named pools.
    pub pools: Vec<PoolConfig>,
    /// Solo-miner tail.
    pub tail: TailConfig,
    /// Scripted events.
    pub events: Vec<EventConfig>,
    /// Multiplicative hashrate growth per 365 days (1.0 = flat). Defined
    /// per year so truncated scenarios keep the full-year dynamics.
    pub hashrate_growth: f64,
    /// Miner clock jitter on declared timestamps.
    pub timestamp_jitter: bool,
    /// How blocks are attributed downstream.
    pub attribution: AttributionMode,
    /// Hard cap on generated blocks (`None` = run the full `days`).
    pub limit_blocks: Option<u64>,
}

fn knots(points: &[(f64, f64)]) -> Vec<SharePoint> {
    points
        .iter()
        .map(|&(day, share)| SharePoint { day, share })
        .collect()
}

/// A Bitcoin pool with an early-year share that consolidates to a
/// late-year share between days 50 and 90.
fn btc_pool(name: &str, tag: &str, early: f64, late: f64) -> PoolConfig {
    PoolConfig {
        name: name.to_string(),
        tag: Some(tag.to_string()),
        address: None,
        schedule: knots(&[(0.0, early), (50.0, early), (90.0, late), (365.0, late)]),
        drift_sigma: 0.04,
        drift_reversion: 0.15,
    }
}

/// An Ethereum pool with a constant intended share and a known address.
fn eth_pool(name: &str, tag: &str, address: &str, share: f64) -> PoolConfig {
    PoolConfig {
        name: name.to_string(),
        tag: Some(tag.to_string()),
        address: Some(address.to_string()),
        schedule: knots(&[(0.0, share)]),
        drift_sigma: 0.05,
        drift_reversion: 0.20,
    }
}

impl Scenario {
    /// The calibrated Bitcoin 2019 preset. See module docs.
    pub fn bitcoin_2019() -> Scenario {
        let pools = vec![
            btc_pool("BTC.com", "/BTC.COM/", 0.130, 0.175),
            btc_pool("AntPool", "/AntPool/", 0.100, 0.130),
            btc_pool("F2Pool", "/F2Pool/", 0.095, 0.120),
            btc_pool("Poolin", "/poolin.com/", 0.070, 0.115),
            btc_pool("SlushPool", "/slush/", 0.080, 0.075),
            btc_pool("ViaBTC", "/ViaBTC/", 0.065, 0.060),
            btc_pool("BTC.TOP", "/BTC.TOP/", 0.060, 0.055),
            btc_pool("Huobi.pool", "/Huobi/", 0.045, 0.045),
            btc_pool("1THash", "/1THash", 0.030, 0.025),
            btc_pool("BitFury", "/Bitfury/", 0.025, 0.030),
            btc_pool("Bitcoin.com", "/pool.bitcoin.com/", 0.025, 0.020),
            btc_pool("BitClub", "/BitClub Network/", 0.020, 0.015),
            btc_pool("Bixin", "/Bixin/", 0.020, 0.015),
            btc_pool("SpiderPool", "/SpiderPool/", 0.015, 0.010),
            btc_pool("NovaBlock", "/NovaBlock", 0.015, 0.010),
            btc_pool("OKExPool", "/okpool.top/", 0.015, 0.010),
            btc_pool("58COIN", "/58coin", 0.010, 0.005),
            btc_pool("WAYI.CN", "/WAYI.CN/", 0.010, 0.005),
        ];
        // The paper's day-14 (Jan 14) anomaly: two blocks with >80 and >90
        // coinbase addresses; plus a few smaller multi-payout blocks on
        // other early days, matching the "first 50 days" turbulence.
        let events = vec![
            EventConfig::MultiCoinbase {
                day: 13,
                block_of_day: 42,
                addresses: 85,
            },
            EventConfig::MultiCoinbase {
                day: 13,
                block_of_day: 101,
                addresses: 93,
            },
            EventConfig::MultiCoinbase {
                day: 5,
                block_of_day: 60,
                addresses: 34,
            },
            EventConfig::MultiCoinbase {
                day: 9,
                block_of_day: 88,
                addresses: 46,
            },
            EventConfig::MultiCoinbase {
                day: 22,
                block_of_day: 17,
                addresses: 52,
            },
            EventConfig::MultiCoinbase {
                day: 30,
                block_of_day: 70,
                addresses: 38,
            },
            EventConfig::MultiCoinbase {
                day: 38,
                block_of_day: 55,
                addresses: 61,
            },
            EventConfig::MultiCoinbase {
                day: 45,
                block_of_day: 12,
                addresses: 29,
            },
            // Fig. 13 cross-interval anomaly: a 4-day dominance burst over
            // days 61..65 — two days in week 8 (days 56-62) and two in
            // week 9, so each fixed weekly window dilutes it while a
            // sliding weekly window aligned on it sees all four days.
            EventConfig::DominantShare {
                pool: "BTC.com".into(),
                start_day: 61,
                end_day: 65,
                share: 0.53,
            },
        ];
        Scenario {
            name: "bitcoin-2019".into(),
            chain: ChainKind::Bitcoin,
            seed: 2019_0101,
            start_time: Timestamp::year_2019_start().secs(),
            days: 365,
            pools,
            tail: TailConfig {
                miners: 160,
                alpha: 1.30,
                schedule: knots(&[(0.0, 0.12), (50.0, 0.12), (90.0, 0.05), (365.0, 0.05)]),
            },
            events,
            hashrate_growth: 2.2,
            timestamp_jitter: true,
            attribution: AttributionMode::PerAddress,
            limit_blocks: None,
        }
    }

    /// The calibrated Ethereum 2019 preset. See module docs.
    pub fn ethereum_2019() -> Scenario {
        let pools = vec![
            eth_pool(
                "Ethermine",
                "ethermine-eu1",
                "0xea674fdde714fd979de3edf0f56aa9716b898ec8",
                0.270,
            ),
            eth_pool(
                "SparkPool",
                "sparkpool-eth-cn-hz2",
                "0x5a0b54d5dc17e0aadc383d2db43b0a0d3e029c4c",
                0.225,
            ),
            eth_pool(
                "F2Pool",
                "f2pool-eth",
                "0x829bd824b016326a401d083b33d092293333a830",
                0.125,
            ),
            eth_pool(
                "Nanopool",
                "nanopool.org",
                "0x52bc44d5378309ee2abf1539bf71de1b7d7be3b5",
                0.090,
            ),
            eth_pool(
                "MiningPoolHub",
                "miningpoolhub1",
                "0xb2930b35844a230f00e51431acae96fe543a0347",
                0.060,
            ),
            eth_pool(
                "zhizhu.top",
                "zhizhu2.0",
                "0x04668ec2f57cc15c381b461b9fedab5d451c8f7f",
                0.050,
            ),
            eth_pool(
                "Hiveon",
                "hiveon-pool",
                "0x1ad91ee08f21be3de0ba2ba6918e714da6b45836",
                0.035,
            ),
            eth_pool(
                "DwarfPool",
                "dwarfpool1",
                "0x2a65aca4d5fc5b5c859090a6c34d164135398226",
                0.030,
            ),
            eth_pool(
                "firepool",
                "firepool.com",
                "0x35f61dfb08ada13eba64bf156b80df3d5b3a738d",
                0.020,
            ),
            eth_pool(
                "UUPool",
                "uupool.cn",
                "0xd224ca0c819e8e97ba0136b3b95ceff503b79f53",
                0.020,
            ),
        ];
        Scenario {
            name: "ethereum-2019".into(),
            chain: ChainKind::Ethereum,
            seed: 2019_0102,
            start_time: Timestamp::year_2019_start().secs(),
            days: 365,
            pools,
            tail: TailConfig {
                miners: 300,
                alpha: 1.20,
                schedule: knots(&[(0.0, 0.085)]),
            },
            events: Vec::new(),
            hashrate_growth: 1.45,
            timestamp_jitter: true,
            attribution: AttributionMode::PerAddress,
            limit_blocks: None,
        }
    }

    /// Shorten the scenario (for tests and quick runs): keeps the first
    /// `days` days of every schedule and drops events outside the range.
    pub fn truncated(mut self, days: u32) -> Scenario {
        self.days = days;
        self.events.retain(|e| match e {
            EventConfig::MultiCoinbase { day, .. } => *day < days,
            EventConfig::DominantShare { start_day, .. } => *start_day < days,
        });
        self
    }

    /// Replace the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// The chain's parameter spec.
    pub fn spec(&self) -> &'static blockdec_chain::ChainSpec {
        self.chain.spec()
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serializes") // blockdec-lint: allow(panic) — serializing a plain data struct cannot fail
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Scenario, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashrate::schedule_share;

    #[test]
    fn bitcoin_preset_shares_are_sane() {
        let s = Scenario::bitcoin_2019();
        assert_eq!(s.chain, ChainKind::Bitcoin);
        // Late-year pool + tail intent sums near 1.
        let pools_late: f64 = s
            .pools
            .iter()
            .map(|p| schedule_share(&p.schedule, 200.0))
            .sum();
        let tail_late = schedule_share(&s.tail.schedule, 200.0);
        // Shares are renormalized by the population, so intent only has
        // to be near 1.
        assert!(
            (pools_late + tail_late - 1.0).abs() < 0.06,
            "{}",
            pools_late + tail_late
        );
        // Early-year too.
        let pools_early: f64 = s
            .pools
            .iter()
            .map(|p| schedule_share(&p.schedule, 10.0))
            .sum();
        let tail_early = schedule_share(&s.tail.schedule, 10.0);
        assert!((pools_early + tail_early - 1.0).abs() < 0.06);
        // Early year is flatter: the tail holds materially more.
        assert!(tail_early > tail_late + 0.05);
        // Late-year top-4 just clears 51% → the paper's stable Nakamoto 4.
        let mut late: Vec<f64> = s
            .pools
            .iter()
            .map(|p| schedule_share(&p.schedule, 200.0))
            .collect();
        late.sort_by(|a, b| b.total_cmp(a));
        let top4: f64 = late[..4].iter().sum();
        assert!(top4 >= 0.51, "top4 {top4}");
        assert!(late[..3].iter().sum::<f64>() < 0.51);
    }

    #[test]
    fn ethereum_preset_shares_are_sane() {
        let s = Scenario::ethereum_2019();
        let pools: f64 = s
            .pools
            .iter()
            .map(|p| schedule_share(&p.schedule, 100.0))
            .sum();
        let tail = schedule_share(&s.tail.schedule, 100.0);
        assert!((pools + tail - 1.0).abs() < 0.02);
        // Top-2 just under 51%, top-3 over → Nakamoto oscillates 2–3.
        let mut shares: Vec<f64> = s
            .pools
            .iter()
            .map(|p| schedule_share(&p.schedule, 100.0))
            .collect();
        shares.sort_by(|a, b| b.total_cmp(a));
        let top2: f64 = shares[..2].iter().sum();
        let top3: f64 = shares[..3].iter().sum();
        assert!(top2 < 0.51 && top2 > 0.44, "top2 {top2}");
        assert!(top3 >= 0.51, "top3 {top3}");
        // No scripted anomalies on Ethereum (§II-C2d).
        assert!(s.events.is_empty());
    }

    #[test]
    fn bitcoin_preset_contains_day14_anomaly() {
        let s = Scenario::bitcoin_2019();
        let day13: Vec<_> = s
            .events
            .iter()
            .filter(|e| matches!(e, EventConfig::MultiCoinbase { day: 13, .. }))
            .collect();
        assert_eq!(day13.len(), 2);
        let big = s
            .events
            .iter()
            .any(|e| matches!(e, EventConfig::MultiCoinbase { addresses, .. } if *addresses > 90));
        assert!(big, "needs a >90-address block like no. 558,545");
    }

    #[test]
    fn truncation_drops_out_of_range_events() {
        let s = Scenario::bitcoin_2019().truncated(20);
        assert_eq!(s.days, 20);
        for e in &s.events {
            match e {
                EventConfig::MultiCoinbase { day, .. } => assert!(*day < 20),
                EventConfig::DominantShare { start_day, .. } => assert!(*start_day < 20),
            }
        }
        // Day-13 events survive a 20-day truncation.
        assert!(!s.events.is_empty());
    }

    #[test]
    fn json_roundtrip() {
        for s in [Scenario::bitcoin_2019(), Scenario::ethereum_2019()] {
            let json = s.to_json();
            let back = Scenario::from_json(&json).unwrap();
            assert_eq!(s, back);
        }
    }

    #[test]
    fn builder_helpers() {
        let s = Scenario::ethereum_2019().with_seed(99);
        assert_eq!(s.seed, 99);
        assert_eq!(s.spec().kind, ChainKind::Ethereum);
    }

    #[test]
    fn eth_pool_addresses_match_builtin_tag_db() {
        // Every preset Ethereum pool address must be recognized by the
        // built-in attribution table — that is how blocks get attributed.
        let db = blockdec_chain::pooltags::PoolTagDb::builtin();
        for p in Scenario::ethereum_2019().pools {
            let addr = p.address.expect("eth pools have known addresses");
            assert_eq!(
                db.match_address(ChainKind::Ethereum, &addr),
                Some(p.name.as_str()),
                "address {addr} must map to {}",
                p.name
            );
        }
    }

    #[test]
    fn btc_pool_tags_match_builtin_tag_db() {
        let db = blockdec_chain::pooltags::PoolTagDb::builtin();
        for p in Scenario::bitcoin_2019().pools {
            let tag = p.tag.expect("btc pools have tags");
            assert_eq!(
                db.match_tag(ChainKind::Bitcoin, &tag),
                Some(p.name.as_str()),
                "tag {tag} must map to {}",
                p.name
            );
        }
    }
}
