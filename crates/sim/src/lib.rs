//! # blockdec-sim
//!
//! Calibrated proof-of-work block-stream simulator: the repository's
//! substitute for the paper's Google BigQuery data collection (§II-A).
//!
//! A [`scenario::Scenario`] describes a miner population (named pools with
//! drifting, scheduled hashrate shares plus a Pareto long tail of solo
//! miners), block arrival dynamics (exponential inter-arrival driven by a
//! difficulty/hashrate feedback loop with the chain's real retarget rule),
//! and injected events (the day-14 multi-coinbase anomaly blocks, the
//! day-60 dominant-miner burst). Generation is fully deterministic per
//! seed.
//!
//! The presets [`scenario::Scenario::bitcoin_2019`] and
//! [`scenario::Scenario::ethereum_2019`] are calibrated so that the
//! decentralization measurements downstream reproduce the *shape* of every
//! figure in the paper (see DESIGN.md and EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod calibration;
pub mod difficulty;
pub mod events;
pub mod feed;
pub mod generator;
pub mod hashrate;
pub mod population;
pub mod rng;
pub mod scenario;

pub use feed::{ChainFeed, FeedConfig, FeedStats};
pub use generator::{BlockGenerator, GeneratedColumns, GeneratedStream};
pub use scenario::Scenario;
