//! Difficulty adjustment — the feedback loop that keeps simulated block
//! production at the chain's target rate.
//!
//! * **Bitcoin** ([`RetargetRule::Epoch`]): every 2016 blocks, difficulty
//!   scales by expected/actual epoch duration, clamped 4x either way —
//!   the mainnet rule. Growing hashrate therefore produces the same
//!   slightly-faster-than-600s average 2019 showed (54,231 blocks instead
//!   of the nominal 52,560).
//! * **Ethereum** ([`RetargetRule::PerBlock`]): the Homestead rule
//!   `diff += parent/2048 · max(1 − ⌊dt/10⌋, −99)`. Its equilibrium under
//!   exponential inter-arrival is a mean of `10/ln 2 ≈ 14.4s` — which is
//!   exactly the "6,000 blocks per day" the paper quotes.

use blockdec_chain::params::RetargetRule;

/// Difficulty controller state.
#[derive(Clone, Debug)]
pub struct DifficultyState {
    rule: RetargetRule,
    difficulty: f64,
    target_interval: f64,
    /// Epoch bookkeeping (Bitcoin rule).
    blocks_in_epoch: u64,
    epoch_start_time: i64,
}

impl DifficultyState {
    /// Initialize at a starting difficulty and target interval (seconds).
    pub fn new(
        rule: RetargetRule,
        initial_difficulty: f64,
        target_interval: f64,
        start_time: i64,
    ) -> DifficultyState {
        assert!(initial_difficulty > 0.0);
        assert!(target_interval > 0.0);
        DifficultyState {
            rule,
            difficulty: initial_difficulty,
            target_interval,
            blocks_in_epoch: 0,
            epoch_start_time: start_time,
        }
    }

    /// Current difficulty (arbitrary units).
    pub fn difficulty(&self) -> f64 {
        self.difficulty
    }

    /// Expected seconds to the next block at the given hashrate
    /// (difficulty is calibrated so that difficulty/hashrate = seconds).
    pub fn expected_interval(&self, hashrate: f64) -> f64 {
        debug_assert!(hashrate > 0.0);
        self.difficulty / hashrate
    }

    /// Record a produced block and adjust difficulty per the rule.
    /// `block_time` is the block's arrival time, `dt` the seconds since
    /// the previous block.
    pub fn on_block(&mut self, block_time: i64, dt: f64) {
        match self.rule {
            RetargetRule::Epoch { interval } => {
                self.blocks_in_epoch += 1;
                if self.blocks_in_epoch >= interval {
                    let actual = (block_time - self.epoch_start_time).max(1) as f64;
                    let expected = self.target_interval * interval as f64;
                    let ratio = (expected / actual).clamp(0.25, 4.0);
                    self.difficulty *= ratio;
                    self.blocks_in_epoch = 0;
                    self.epoch_start_time = block_time;
                }
            }
            RetargetRule::PerBlock => {
                // Homestead: adjustment in units of parent/2048.
                let steps = (dt / 10.0).floor();
                let factor = (1.0 - steps).max(-99.0);
                self.difficulty += self.difficulty / 2048.0 * factor;
                // Never collapse to zero on pathological gaps.
                self.difficulty = self.difficulty.max(1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn epoch_rule_restores_target_after_hashrate_jump() {
        // Hashrate doubles: blocks come twice as fast until the retarget,
        // after which difficulty doubles and the interval is restored.
        let target = 600.0;
        let mut d = DifficultyState::new(RetargetRule::Epoch { interval: 100 }, 600.0, target, 0);
        let hashrate = 2.0; // doubled from the 1.0 the difficulty assumed
        let mut t = 0i64;
        for _ in 0..100 {
            let dt = d.expected_interval(hashrate);
            t += dt as i64;
            d.on_block(t, dt);
        }
        // After one epoch the expected interval at the new hashrate is
        // back near the target.
        let restored = d.expected_interval(hashrate);
        assert!(
            (restored - target).abs() < target * 0.05,
            "interval {restored}"
        );
    }

    #[test]
    fn epoch_rule_clamps_extreme_swings() {
        let mut d = DifficultyState::new(RetargetRule::Epoch { interval: 10 }, 1000.0, 600.0, 0);
        // Blocks arrive absurdly fast (1s apart): ratio clamps at 4.
        for i in 1..=10 {
            d.on_block(i, 1.0);
        }
        assert!((d.difficulty() - 4000.0).abs() < 1e-6);
        // And absurdly slow: clamps at 0.25.
        let mut d = DifficultyState::new(RetargetRule::Epoch { interval: 10 }, 1000.0, 600.0, 0);
        for i in 1..=10 {
            d.on_block(i * 1_000_000, 1_000_000.0);
        }
        assert!((d.difficulty() - 250.0).abs() < 1e-6);
    }

    #[test]
    fn per_block_rule_raises_on_fast_blocks() {
        let mut d = DifficultyState::new(RetargetRule::PerBlock, 1000.0, 14.4, 0);
        d.on_block(5, 5.0); // dt < 10 → +parent/2048
        assert!(d.difficulty() > 1000.0);
    }

    #[test]
    fn per_block_rule_lowers_on_slow_blocks() {
        let mut d = DifficultyState::new(RetargetRule::PerBlock, 1000.0, 14.4, 0);
        d.on_block(30, 30.0); // dt in [30, 40) → factor −2
        assert!(d.difficulty() < 1000.0);
    }

    #[test]
    fn per_block_rule_floors_at_minus_99() {
        let mut d = DifficultyState::new(RetargetRule::PerBlock, 1_000_000.0, 14.4, 0);
        d.on_block(100_000, 100_000.0);
        let expected = 1_000_000.0 - 1_000_000.0 / 2048.0 * 99.0;
        assert!((d.difficulty() - expected).abs() < 1e-6);
    }

    #[test]
    fn homestead_equilibrium_is_near_6000_blocks_per_day() {
        // Run the closed loop with exponential arrivals at constant
        // hashrate: the mean interval converges near 10/ln2 ≈ 14.43s,
        // i.e. ≈ 5,990 blocks/day.
        let mut rng = SimRng::new(12);
        let hashrate = 1.0;
        let mut d = DifficultyState::new(RetargetRule::PerBlock, 14.4, 14.4, 0);
        let mut t = 0.0f64;
        // Warm up.
        for _ in 0..20_000 {
            let dt = rng.exponential(d.expected_interval(hashrate));
            t += dt;
            d.on_block(t as i64, dt);
        }
        // Measure.
        let t0 = t;
        let n = 60_000;
        for _ in 0..n {
            let dt = rng.exponential(d.expected_interval(hashrate));
            t += dt;
            d.on_block(t as i64, dt);
        }
        let mean_dt = (t - t0) / n as f64;
        let blocks_per_day = 86_400.0 / mean_dt;
        assert!(
            (5_600.0..6_400.0).contains(&blocks_per_day),
            "blocks/day {blocks_per_day}"
        );
    }

    #[test]
    fn difficulty_never_hits_zero() {
        let mut d = DifficultyState::new(RetargetRule::PerBlock, 10.0, 14.4, 0);
        for i in 0..100 {
            d.on_block(i * 1_000_000, 1_000_000.0);
        }
        assert!(d.difficulty() >= 1.0);
    }
}
