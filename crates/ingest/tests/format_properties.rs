//! Property-based tests for the data formats: CSV field quoting, block
//! CSV/JSONL round trips over arbitrary valid blocks, and timestamp
//! parsing over its full rendered range.

use blockdec_chain::{Address, Block, ChainKind, Timestamp};
use blockdec_ingest::csv::{parse_record, read_blocks_csv, write_blocks_csv, write_record};
use blockdec_ingest::jsonl::{read_blocks_jsonl, write_blocks_jsonl};
use blockdec_ingest::timeparse::parse_timestamp;
use proptest::prelude::*;
use std::io::BufReader;

/// Arbitrary printable field content including CSV-hostile characters.
fn field() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            prop::char::range('a', 'z'),
            Just(','),
            Just('"'),
            Just(' '),
            Just('/'),
        ],
        0..20,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Arbitrary valid blocks, height-ascending.
fn blocks() -> impl Strategy<Value = Vec<Block>> {
    (
        1u64..1_000_000,
        prop::collection::vec(
            (1u64..4, 0i64..100_000, 1u64..100, 1usize..4, any::<bool>()),
            1..40,
        ),
    )
        .prop_map(|(start, raw)| {
            let mut height = start;
            let mut time = 1_546_300_800i64;
            raw.into_iter()
                .map(|(dh, dt, diff, n_addr, tagged)| {
                    height += dh;
                    time += dt;
                    let mut b = Block::builder(ChainKind::Bitcoin, height)
                        .timestamp(Timestamp(time))
                        .difficulty(diff)
                        .tx_count((height % 4_000) as u32)
                        .size_bytes((height % 1_000_000) as u32);
                    for k in 0..n_addr {
                        b = b.payout(Address::synthesize(
                            ChainKind::Bitcoin,
                            height * 10 + k as u64,
                        ));
                    }
                    if tagged {
                        b = b.tag("/F2Pool/");
                    }
                    b.build().expect("valid")
                })
                .collect()
        })
}

/// Arbitrary JSON values (bounded depth) for parser-robustness tests.
fn arb_json() -> impl Strategy<Value = serde_json::Value> {
    let leaf = prop_oneof![
        Just(serde_json::Value::Null),
        any::<bool>().prop_map(serde_json::Value::from),
        any::<i64>().prop_map(serde_json::Value::from),
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(serde_json::Value::from),
        "[a-z0-9 /:-]{0,20}".prop_map(serde_json::Value::from),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(serde_json::Value::Array),
            prop::collection::btree_map("[a-z_]{1,12}", inner, 0..6)
                .prop_map(|m| { serde_json::Value::Object(m.into_iter().collect()) }),
        ]
    })
}

proptest! {
    // The BigQuery row parsers must never panic on arbitrary JSON — they
    // return structured errors instead.
    #[test]
    fn bigquery_parsers_never_panic(row in arb_json()) {
        let _ = blockdec_ingest::bigquery::parse_bitcoin_row(1, &row);
        let _ = blockdec_ingest::bigquery::parse_ethereum_row(1, &row);
    }

    // Same for the CSV record parser on arbitrary byte-ish lines.
    #[test]
    fn csv_parser_never_panics(line in "[ -~]{0,80}") {
        let _ = parse_record(&line, 1);
    }

    // And the timestamp parser on arbitrary short strings.
    #[test]
    fn timestamp_parser_never_panics(s in "[ -~]{0,30}") {
        let _ = parse_timestamp(&s);
    }
}

proptest! {
    #[test]
    fn csv_record_roundtrip(fields in prop::collection::vec(field(), 1..8)) {
        let mut buf = Vec::new();
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        write_record(&mut buf, &refs).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let line = line.trim_end_matches('\n');
        // The empty single field encodes to an empty line, which the
        // reader treats as a blank row — skip that degenerate case.
        prop_assume!(!line.is_empty());
        let parsed = parse_record(line, 1).unwrap().unwrap();
        prop_assert_eq!(parsed, fields);
    }

    #[test]
    fn block_csv_roundtrip_preserves_measured_fields(blocks in blocks()) {
        let mut buf = Vec::new();
        write_blocks_csv(&mut buf, &blocks).unwrap();
        let parsed = read_blocks_csv(BufReader::new(buf.as_slice()), ChainKind::Bitcoin).unwrap();
        prop_assert_eq!(parsed.len(), blocks.len());
        for (a, b) in blocks.iter().zip(&parsed) {
            prop_assert_eq!(a.height, b.height);
            prop_assert_eq!(a.timestamp, b.timestamp);
            prop_assert_eq!(&a.coinbase.tag, &b.coinbase.tag);
            prop_assert_eq!(&a.coinbase.payout_addresses, &b.coinbase.payout_addresses);
            prop_assert_eq!(a.difficulty, b.difficulty);
            prop_assert_eq!(a.tx_count, b.tx_count);
            prop_assert_eq!(a.size_bytes, b.size_bytes);
        }
    }

    #[test]
    fn block_jsonl_roundtrip_is_lossless(blocks in blocks()) {
        let mut buf = Vec::new();
        write_blocks_jsonl(&mut buf, &blocks).unwrap();
        let parsed = read_blocks_jsonl(BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(parsed, blocks);
    }

    #[test]
    fn timestamp_iso_roundtrip(secs in 0i64..4_102_444_800) {
        // 1970..2100: every chain-rendered ISO timestamp parses back.
        let t = Timestamp(secs);
        prop_assert_eq!(parse_timestamp(&t.to_iso8601()), Some(t));
    }

    #[test]
    fn timestamp_integer_forms(secs in 0i64..4_102_444_800) {
        prop_assert_eq!(parse_timestamp(&secs.to_string()), Some(Timestamp(secs)));
        prop_assert_eq!(
            parse_timestamp(&(secs * 1000).to_string()),
            Some(Timestamp(if secs >= 1_000_000_000 { secs } else { secs * 1000 }))
        );
    }

    #[test]
    fn timestamp_bigquery_form(secs in 0i64..4_102_444_800) {
        let t = Timestamp(secs);
        let d = t.date();
        let s = t.seconds_of_day();
        let rendered = format!(
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02} UTC",
            d.year, d.month, d.day, s / 3600, (s / 60) % 60, s % 60
        );
        prop_assert_eq!(parse_timestamp(&rendered), Some(t));
    }
}
