//! RFC 4180 CSV reading/writing plus the canonical block schema.
//!
//! The canonical block CSV (what `blockdec simulate --format csv` emits
//! and `blockdec ingest` reads back) has the header:
//!
//! ```text
//! height,timestamp,tag,payout_addresses,difficulty,tx_count,size_bytes
//! ```
//!
//! `payout_addresses` is `;`-separated (multi-coinbase blocks have many),
//! `tag` may be empty, and `timestamp` accepts every format in
//! [`crate::timeparse`].

use crate::error::{IngestError, Result};
use crate::timeparse::parse_timestamp;
use blockdec_chain::{Address, Block, ChainKind};
use std::io::{BufRead, Write};

/// Parse one CSV record (handles quoted fields, embedded commas/quotes).
/// Returns `None` for an empty line.
pub fn parse_record(line: &str, line_no: u64) -> Result<Option<Vec<String>>> {
    if line.is_empty() {
        return Ok(None);
    }
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    loop {
        match chars.next() {
            None => {
                if in_quotes {
                    return Err(IngestError::parse(line_no, "unterminated quoted field"));
                }
                fields.push(std::mem::take(&mut field));
                break;
            }
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if field.is_empty() && !in_quotes => in_quotes = true,
            Some(',') if !in_quotes => fields.push(std::mem::take(&mut field)),
            Some(c) => field.push(c),
        }
    }
    Ok(Some(fields))
}

/// Write one CSV record with RFC 4180 quoting.
pub fn write_record(out: &mut impl Write, fields: &[&str]) -> std::io::Result<()> {
    let mut first = true;
    for f in fields {
        if !first {
            out.write_all(b",")?;
        }
        first = false;
        if f.contains([',', '"', '\n', '\r']) {
            write!(out, "\"{}\"", f.replace('"', "\"\""))?;
        } else {
            out.write_all(f.as_bytes())?;
        }
    }
    out.write_all(b"\n")
}

/// The canonical block CSV header.
pub const BLOCK_CSV_HEADER: &str =
    "height,timestamp,tag,payout_addresses,difficulty,tx_count,size_bytes";

/// Write blocks in the canonical schema (with header).
pub fn write_blocks_csv(out: &mut impl Write, blocks: &[Block]) -> std::io::Result<()> {
    writeln!(out, "{BLOCK_CSV_HEADER}")?;
    for b in blocks {
        let addrs = b
            .coinbase
            .payout_addresses
            .iter()
            .map(|a| a.as_str())
            .collect::<Vec<_>>()
            .join(";");
        write_record(
            out,
            &[
                &b.height.to_string(),
                &b.timestamp.secs().to_string(),
                b.coinbase.tag.as_deref().unwrap_or(""),
                &addrs,
                &b.difficulty.to_string(),
                &b.tx_count.to_string(),
                &b.size_bytes.to_string(),
            ],
        )?;
    }
    Ok(())
}

/// Read blocks in the canonical schema. The header row is required and
/// validated; rows must be height-ordered but gaps are allowed (a
/// filtered export is still measurable).
pub fn read_blocks_csv(input: impl BufRead, chain: ChainKind) -> Result<Vec<Block>> {
    let _t = blockdec_obs::span_timed!("stage.ingest", format = "csv");
    let mut line_count: u64 = 0;
    let mut blocks = Vec::new();
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| IngestError::parse(1, "empty file"))??;
    if header.trim() != BLOCK_CSV_HEADER {
        return Err(IngestError::parse(
            1,
            format!("unexpected header {header:?}, want {BLOCK_CSV_HEADER:?}"),
        ));
    }
    for (i, line) in lines.enumerate() {
        let line_no = i as u64 + 2;
        line_count = line_no;
        let line = line?;
        let Some(fields) = parse_record(&line, line_no)? else {
            continue;
        };
        if fields.len() != 7 {
            return Err(IngestError::parse(
                line_no,
                format!("expected 7 fields, got {}", fields.len()),
            ));
        }
        let height: u64 = fields[0]
            .parse()
            .map_err(|e| IngestError::parse(line_no, format!("height: {e}")))?;
        let timestamp = parse_timestamp(&fields[1])
            .ok_or_else(|| IngestError::parse(line_no, format!("bad timestamp {:?}", fields[1])))?;
        let mut builder = Block::builder(chain, height)
            .timestamp(timestamp)
            .difficulty(
                fields[4]
                    .parse()
                    .map_err(|e| IngestError::parse(line_no, format!("difficulty: {e}")))?,
            )
            .tx_count(
                fields[5]
                    .parse()
                    .map_err(|e| IngestError::parse(line_no, format!("tx_count: {e}")))?,
            )
            .size_bytes(
                fields[6]
                    .parse()
                    .map_err(|e| IngestError::parse(line_no, format!("size_bytes: {e}")))?,
            );
        if !fields[2].is_empty() {
            builder = builder.tag(fields[2].clone());
        }
        for addr in fields[3].split(';').filter(|a| !a.is_empty()) {
            let parsed = Address::parse(chain, addr).map_err(|source| IngestError::Invalid {
                line: line_no,
                source,
            })?;
            builder = builder.payout(parsed);
        }
        let block = builder.build().map_err(|source| IngestError::Invalid {
            line: line_no,
            source,
        })?;
        if let Some(prev) = blocks.last() {
            let prev: &Block = prev;
            if block.height <= prev.height {
                return Err(IngestError::parse(
                    line_no,
                    format!("height {} not after {}", block.height, prev.height),
                ));
            }
        }
        blocks.push(block);
    }
    blockdec_obs::counter("ingest.lines").add(line_count);
    blockdec_obs::counter("ingest.blocks").add(blocks.len() as u64);
    blockdec_obs::debug!(blocks = blocks.len(), lines = line_count; "parsed CSV export");
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdec_chain::Timestamp;
    use std::io::BufReader;

    #[test]
    fn record_parsing_handles_quotes() {
        assert_eq!(
            parse_record("a,b,c", 1).unwrap().unwrap(),
            vec!["a", "b", "c"]
        );
        assert_eq!(
            parse_record("\"a,b\",c", 1).unwrap().unwrap(),
            vec!["a,b", "c"]
        );
        assert_eq!(
            parse_record("\"he said \"\"hi\"\"\",x", 1)
                .unwrap()
                .unwrap(),
            vec!["he said \"hi\"", "x"]
        );
        assert_eq!(
            parse_record("a,,c", 1).unwrap().unwrap(),
            vec!["a", "", "c"]
        );
        assert!(parse_record("", 1).unwrap().is_none());
        assert!(parse_record("\"unterminated", 1).is_err());
    }

    #[test]
    fn write_record_quotes_when_needed() {
        let mut out = Vec::new();
        write_record(&mut out, &["plain", "with,comma", "with\"quote"]).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "plain,\"with,comma\",\"with\"\"quote\"\n"
        );
    }

    fn sample_blocks() -> Vec<Block> {
        let a1 = Address::synthesize(ChainKind::Bitcoin, 1);
        let a2 = Address::synthesize(ChainKind::Bitcoin, 2);
        let a3 = Address::synthesize(ChainKind::Bitcoin, 3);
        vec![
            Block::builder(ChainKind::Bitcoin, 100)
                .timestamp(Timestamp(1_546_300_800))
                .difficulty(5)
                .tx_count(10)
                .size_bytes(999)
                .tag("/F2Pool/")
                .payout(a1)
                .build()
                .unwrap(),
            Block::builder(ChainKind::Bitcoin, 101)
                .timestamp(Timestamp(1_546_301_400))
                .difficulty(5)
                .payouts(vec![a2, a3])
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn blocks_roundtrip() {
        let blocks = sample_blocks();
        let mut out = Vec::new();
        write_blocks_csv(&mut out, &blocks).unwrap();
        let parsed = read_blocks_csv(BufReader::new(out.as_slice()), ChainKind::Bitcoin).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].height, 100);
        assert_eq!(parsed[0].coinbase.tag.as_deref(), Some("/F2Pool/"));
        assert_eq!(parsed[1].coinbase.payout_addresses.len(), 2);
        assert_eq!(parsed[1].timestamp.secs(), 1_546_301_400);
        // Hashes are regenerated, so compare the measured fields.
        assert_eq!(parsed[0].tx_count, blocks[0].tx_count);
        assert_eq!(parsed[1].difficulty, blocks[1].difficulty);
    }

    #[test]
    fn rejects_bad_header() {
        let data = "wrong,header\n1,2\n";
        let err = read_blocks_csv(BufReader::new(data.as_bytes()), ChainKind::Bitcoin).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn rejects_wrong_field_count() {
        let data = format!("{BLOCK_CSV_HEADER}\n1,2,3\n");
        let err = read_blocks_csv(BufReader::new(data.as_bytes()), ChainKind::Bitcoin).unwrap_err();
        assert!(err.to_string().contains("7 fields"));
    }

    #[test]
    fn rejects_unordered_heights() {
        let mut out = Vec::new();
        let mut blocks = sample_blocks();
        blocks.swap(0, 1);
        write_blocks_csv(&mut out, &blocks).unwrap();
        let err = read_blocks_csv(BufReader::new(out.as_slice()), ChainKind::Bitcoin).unwrap_err();
        assert!(err.to_string().contains("not after"));
    }

    #[test]
    fn rejects_invalid_address() {
        let data = format!("{BLOCK_CSV_HEADER}\n1,1546300800,,notanaddress,5,0,0\n");
        let err = read_blocks_csv(BufReader::new(data.as_bytes()), ChainKind::Bitcoin).unwrap_err();
        assert!(matches!(err, IngestError::Invalid { line: 2, .. }));
    }

    #[test]
    fn line_numbers_in_errors() {
        let data = format!(
            "{BLOCK_CSV_HEADER}\n1,1546300800,,{},5,0,0\nbad\n",
            Address::synthesize(ChainKind::Bitcoin, 9)
        );
        let err = read_blocks_csv(BufReader::new(data.as_bytes()), ChainKind::Bitcoin).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }
}
