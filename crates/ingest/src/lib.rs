//! # blockdec-ingest
//!
//! Import/export for block data, so the measurement pipeline can run on
//! *real* chain data as well as simulated streams:
//!
//! * [`csv`] — a dependency-free RFC 4180 CSV reader/writer plus the
//!   repository's canonical block CSV schema;
//! * [`jsonl`] — JSON-lines serialization of blocks and attribution
//!   results;
//! * [`bigquery`] — parsers for the Google BigQuery public crypto
//!   dataset export schemas (`crypto_bitcoin.blocks`,
//!   `crypto_ethereum.blocks`), the exact source the paper collected
//!   from (§II-A);
//! * [`timeparse`] — the timestamp formats those exports use;
//! * [`chain_view`] — reorg-aware head-following ingestion: a
//!   [`chain_view::ChainView`] tracks a live chain with a finalized
//!   region in the store and a rollback-able pending tail in memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigquery;
pub mod chain_view;
pub mod csv;
pub mod error;
pub mod jsonl;
pub mod timeparse;

pub use chain_view::{ChainView, HeadUpdate, ReorgStats};
pub use error::IngestError;
