//! Timestamp formats used by BigQuery exports and CSV files.
//!
//! Accepted forms:
//! * integer seconds since the epoch (`1546300800`);
//! * integer milliseconds (heuristically: ≥ 10^12);
//! * `YYYY-MM-DD HH:MM:SS UTC` (BigQuery's default TIMESTAMP rendering);
//! * `YYYY-MM-DDTHH:MM:SSZ` (ISO 8601, optional fractional seconds,
//!   which are truncated);
//! * `YYYY-MM-DD` (midnight).

use blockdec_chain::time::days_from_civil;
use blockdec_chain::Timestamp;

/// Parse a timestamp string; `None` when unrecognized.
pub fn parse_timestamp(s: &str) -> Option<Timestamp> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    // Pure integer: seconds or milliseconds.
    if let Ok(n) = s.parse::<i64>() {
        return Some(if n.abs() >= 1_000_000_000_000 {
            Timestamp(n / 1000)
        } else {
            Timestamp(n)
        });
    }
    // Date part.
    let bytes = s.as_bytes();
    if bytes.len() < 10 || bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let year: i32 = s.get(0..4)?.parse().ok()?;
    let month: u8 = s.get(5..7)?.parse().ok()?;
    let day: u8 = s.get(8..10)?.parse().ok()?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    let midnight = days_from_civil(year, month, day) * 86_400;

    let rest = &s[10..];
    if rest.is_empty() {
        return Some(Timestamp(midnight));
    }
    // Separator: space or 'T'.
    let rest = rest.strip_prefix(['T', ' '])?;
    if rest.len() < 8 {
        return None;
    }
    let hour: i64 = rest.get(0..2)?.parse().ok()?;
    let min: i64 = rest.get(3..5)?.parse().ok()?;
    let sec: i64 = rest.get(6..8)?.parse().ok()?;
    if rest.as_bytes().get(2) != Some(&b':') || rest.as_bytes().get(5) != Some(&b':') {
        return None;
    }
    if hour > 23 || min > 59 || sec > 60 {
        return None;
    }
    // Tail: optional fractional seconds, then "Z", " UTC", "+00:00" or
    // nothing.
    let mut tail = &rest[8..];
    if let Some(stripped) = tail.strip_prefix('.') {
        let digits = stripped.bytes().take_while(u8::is_ascii_digit).count();
        if digits == 0 {
            return None;
        }
        tail = &stripped[digits..];
    }
    match tail {
        "" | "Z" | " UTC" | "+00:00" | "+00" | " +00:00" => {}
        _ => return None,
    }
    Some(Timestamp(midnight + hour * 3600 + min * 60 + sec))
}

#[cfg(test)]
mod tests {
    use super::*;

    const JAN1_2019: i64 = 1_546_300_800;

    #[test]
    fn integer_seconds_and_millis() {
        assert_eq!(parse_timestamp("1546300800").unwrap().secs(), JAN1_2019);
        assert_eq!(parse_timestamp("1546300800000").unwrap().secs(), JAN1_2019);
        assert_eq!(parse_timestamp(" 1546300800 ").unwrap().secs(), JAN1_2019);
    }

    #[test]
    fn bigquery_format() {
        assert_eq!(
            parse_timestamp("2019-01-01 00:00:00 UTC").unwrap().secs(),
            JAN1_2019
        );
        assert_eq!(
            parse_timestamp("2019-01-14 12:30:45 UTC").unwrap().secs(),
            JAN1_2019 + 13 * 86_400 + 12 * 3600 + 30 * 60 + 45
        );
    }

    #[test]
    fn iso_formats() {
        assert_eq!(
            parse_timestamp("2019-01-01T00:00:00Z").unwrap().secs(),
            JAN1_2019
        );
        assert_eq!(
            parse_timestamp("2019-01-01T00:00:00.123Z").unwrap().secs(),
            JAN1_2019
        );
        assert_eq!(
            parse_timestamp("2019-01-01T00:00:00+00:00").unwrap().secs(),
            JAN1_2019
        );
        assert_eq!(
            parse_timestamp("2019-01-01 00:00:00").unwrap().secs(),
            JAN1_2019
        );
    }

    #[test]
    fn date_only_is_midnight() {
        assert_eq!(parse_timestamp("2019-01-01").unwrap().secs(), JAN1_2019);
    }

    #[test]
    fn rejects_garbage() {
        for s in [
            "",
            "not a date",
            "2019-13-01",
            "2019-01-32",
            "2019-01-01 25:00:00",
            "2019-01-01 00:61:00",
            "2019-01-01 00:00:00 PST",
            "2019/01/01",
            "2019-01-01T00:00:00.Z",
        ] {
            assert!(parse_timestamp(s).is_none(), "accepted {s:?}");
        }
    }

    #[test]
    fn roundtrips_with_chain_rendering() {
        let t = Timestamp(JAN1_2019 + 3661);
        assert_eq!(parse_timestamp(&t.to_iso8601()).unwrap(), t);
    }
}
