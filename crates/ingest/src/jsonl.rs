//! JSON-lines serialization of blocks and attribution results.
//!
//! One JSON object per line — the shape BigQuery exports use and the
//! easiest format to stream through shell tooling. Uses the chain types'
//! own serde representations.

use crate::error::{IngestError, Result};
use blockdec_chain::{AttributedBlock, Block};
use std::io::{BufRead, Write};

/// Write blocks as JSONL.
pub fn write_blocks_jsonl(out: &mut impl Write, blocks: &[Block]) -> Result<()> {
    for b in blocks {
        serde_json::to_writer(&mut *out, b)
            .map_err(|e| IngestError::parse(0, format!("serialize: {e}")))?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Read blocks from JSONL (empty lines skipped).
pub fn read_blocks_jsonl(input: impl BufRead) -> Result<Vec<Block>> {
    let _t = blockdec_obs::span_timed!("stage.ingest", format = "jsonl");
    let mut line_count: u64 = 0;
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line_no = i as u64 + 1;
        line_count = line_no;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let block: Block =
            serde_json::from_str(&line).map_err(|e| IngestError::parse(line_no, e.to_string()))?;
        block.validate().map_err(|source| IngestError::Invalid {
            line: line_no,
            source,
        })?;
        out.push(block);
    }
    blockdec_obs::counter("ingest.lines").add(line_count);
    blockdec_obs::counter("ingest.blocks").add(out.len() as u64);
    blockdec_obs::debug!(blocks = out.len(), lines = line_count; "parsed JSONL export");
    Ok(out)
}

/// Write attribution results as JSONL.
pub fn write_attributed_jsonl(out: &mut impl Write, blocks: &[AttributedBlock]) -> Result<()> {
    for b in blocks {
        serde_json::to_writer(&mut *out, b)
            .map_err(|e| IngestError::parse(0, format!("serialize: {e}")))?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Read attribution results from JSONL.
pub fn read_attributed_jsonl(input: impl BufRead) -> Result<Vec<AttributedBlock>> {
    let _t = blockdec_obs::span_timed!("stage.ingest", format = "jsonl-attributed");
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(
            serde_json::from_str(&line)
                .map_err(|e| IngestError::parse(i as u64 + 1, e.to_string()))?,
        );
    }
    blockdec_obs::counter("ingest.blocks").add(out.len() as u64);
    blockdec_obs::debug!(blocks = out.len(); "parsed attributed JSONL");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdec_chain::{Address, ChainKind, Credit, ProducerId, Timestamp};
    use std::io::BufReader;

    fn block(height: u64) -> Block {
        Block::builder(ChainKind::Ethereum, height)
            .timestamp(Timestamp(1_546_300_800))
            .payout(Address::synthesize(ChainKind::Ethereum, height))
            .tag("ethermine-eu1")
            .build()
            .unwrap()
    }

    #[test]
    fn blocks_roundtrip() {
        let blocks = vec![block(1), block(2)];
        let mut buf = Vec::new();
        write_blocks_jsonl(&mut buf, &blocks).unwrap();
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), 2);
        let back = read_blocks_jsonl(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back, blocks);
    }

    #[test]
    fn skips_blank_lines() {
        let blocks = vec![block(1)];
        let mut buf = Vec::new();
        write_blocks_jsonl(&mut buf, &blocks).unwrap();
        buf.extend_from_slice(b"\n  \n");
        let back = read_blocks_jsonl(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn reports_bad_line_number() {
        let blocks = vec![block(1)];
        let mut buf = Vec::new();
        write_blocks_jsonl(&mut buf, &blocks).unwrap();
        buf.extend_from_slice(b"{not json}\n");
        let err = read_blocks_jsonl(BufReader::new(buf.as_slice())).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn attributed_roundtrip() {
        let blocks = vec![AttributedBlock {
            height: 9,
            timestamp: Timestamp(100),
            credits: vec![Credit {
                producer: ProducerId(3),
                weight: 0.5,
            }],
        }];
        let mut buf = Vec::new();
        write_attributed_jsonl(&mut buf, &blocks).unwrap();
        let back = read_attributed_jsonl(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back, blocks);
    }
}
