//! Parsers for the Google BigQuery public crypto dataset export schemas.
//!
//! The paper collected its data from these exact tables (§II-A):
//!
//! * `bigquery-public-data.crypto_bitcoin.blocks` — we read `number`,
//!   `timestamp`, `coinbase_param` (hex-encoded coinbase script, decoded
//!   to recover the pool marker), `transaction_count`, `size`, `bits`.
//!   The blocks table does not carry payout addresses (those live in the
//!   transactions table), so an optional non-standard `coinbase_addresses`
//!   field (array of strings) is honoured when present — our exporter and
//!   common enriched dumps include it; plain dumps fall back to a
//!   synthesized per-tag placeholder address.
//! * `bigquery-public-data.crypto_ethereum.blocks` — we read `number`,
//!   `timestamp`, `miner`, `extra_data` (hex, decoded lossily for the
//!   pool marker), `transaction_count`, `size`, `difficulty`.
//!
//! Exports are JSONL (one row object per line), the default BigQuery
//! extraction format.

use crate::error::{IngestError, Result};
use crate::timeparse::parse_timestamp;
use blockdec_chain::hash::decode_hex;
use blockdec_chain::{Address, Block, ChainKind};
use serde_json::Value;
use std::io::BufRead;

/// Decode a hex field (with or without `0x`) to lossy UTF-8, filtering
/// to printable characters — how explorers render coinbase tags.
fn hex_to_tag(hex: &str) -> Option<String> {
    let bytes = decode_hex(hex).ok()?;
    let text: String = String::from_utf8_lossy(&bytes)
        .chars()
        .filter(|c| !c.is_control())
        .collect();
    let trimmed = text.trim();
    if trimmed.is_empty() {
        None
    } else {
        Some(trimmed.to_string())
    }
}

fn get_u64(row: &Value, key: &str, line: u64) -> Result<u64> {
    let v = row
        .get(key)
        .ok_or_else(|| IngestError::parse(line, format!("missing field {key:?}")))?;
    match v {
        Value::Number(n) => n
            .as_u64()
            .ok_or_else(|| IngestError::parse(line, format!("{key}: not a u64: {n}"))),
        Value::String(s) => s
            .parse::<u64>()
            .map_err(|e| IngestError::parse(line, format!("{key}: {e}"))),
        other => Err(IngestError::parse(
            line,
            format!("{key}: unexpected type {other}"),
        )),
    }
}

fn get_str<'a>(row: &'a Value, key: &str) -> Option<&'a str> {
    row.get(key).and_then(Value::as_str)
}

fn get_timestamp(row: &Value, line: u64) -> Result<blockdec_chain::Timestamp> {
    let v = row
        .get("timestamp")
        .ok_or_else(|| IngestError::parse(line, "missing field \"timestamp\""))?;
    let parsed = match v {
        Value::String(s) => parse_timestamp(s),
        Value::Number(n) => n.as_i64().map(|secs| {
            if secs.abs() >= 1_000_000_000_000 {
                blockdec_chain::Timestamp(secs / 1000)
            } else {
                blockdec_chain::Timestamp(secs)
            }
        }),
        _ => None,
    };
    parsed.ok_or_else(|| IngestError::parse(line, format!("unparseable timestamp {v}")))
}

/// Parse one `crypto_bitcoin.blocks` row.
pub fn parse_bitcoin_row(line_no: u64, row: &Value) -> Result<Block> {
    let height = get_u64(row, "number", line_no)?;
    let timestamp = get_timestamp(row, line_no)?;
    let tag = get_str(row, "coinbase_param").and_then(hex_to_tag);

    let mut builder = Block::builder(ChainKind::Bitcoin, height)
        .timestamp(timestamp)
        .difficulty(get_u64(row, "bits", line_no).unwrap_or(1).max(1))
        .tx_count(get_u64(row, "transaction_count", line_no).unwrap_or(0) as u32)
        .size_bytes(get_u64(row, "size", line_no).unwrap_or(0) as u32);
    if let Some(t) = &tag {
        builder = builder.tag(t.clone());
    }

    // Optional enriched payout addresses.
    let mut any_address = false;
    if let Some(Value::Array(addrs)) = row.get("coinbase_addresses") {
        for a in addrs {
            if let Some(s) = a.as_str() {
                let parsed = Address::parse(ChainKind::Bitcoin, s).map_err(|source| {
                    IngestError::Invalid {
                        line: line_no,
                        source,
                    }
                })?;
                builder = builder.payout(parsed);
                any_address = true;
            }
        }
    }
    if !any_address {
        // Plain dump: synthesize a stable placeholder keyed by the tag
        // (or the height for untagged blocks) so attribution still
        // groups consistently.
        let seed = match &tag {
            Some(t) => {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in t.bytes() {
                    h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
                }
                h
            }
            None => height,
        };
        builder = builder.payout(Address::synthesize(ChainKind::Bitcoin, seed));
    }
    builder.build().map_err(|source| IngestError::Invalid {
        line: line_no,
        source,
    })
}

/// Parse one `crypto_ethereum.blocks` row.
pub fn parse_ethereum_row(line_no: u64, row: &Value) -> Result<Block> {
    let height = get_u64(row, "number", line_no)?;
    let timestamp = get_timestamp(row, line_no)?;
    let miner = get_str(row, "miner")
        .ok_or_else(|| IngestError::parse(line_no, "missing field \"miner\""))?;
    let address =
        Address::parse(ChainKind::Ethereum, miner).map_err(|source| IngestError::Invalid {
            line: line_no,
            source,
        })?;

    let mut builder = Block::builder(ChainKind::Ethereum, height)
        .timestamp(timestamp)
        .difficulty(get_u64(row, "difficulty", line_no).unwrap_or(1).max(1))
        .tx_count(get_u64(row, "transaction_count", line_no).unwrap_or(0) as u32)
        .size_bytes(get_u64(row, "size", line_no).unwrap_or(0) as u32)
        .payout(address);
    if let Some(tag) = get_str(row, "extra_data").and_then(hex_to_tag) {
        builder = builder.tag(tag);
    }
    builder.build().map_err(|source| IngestError::Invalid {
        line: line_no,
        source,
    })
}

/// Write blocks in the BigQuery export schema (the inverse of
/// [`read_bigquery_jsonl`]): Bitcoin rows carry the hex `coinbase_param`
/// plus the enriched `coinbase_addresses` array; Ethereum rows carry
/// `miner` and hex `extra_data`. Lets simulated data stand in for a real
/// export byte-for-byte schema-wise.
pub fn write_bigquery_jsonl(
    out: &mut impl std::io::Write,
    blocks: &[Block],
) -> std::io::Result<()> {
    use blockdec_chain::hash::encode_hex;
    for b in blocks {
        let row = match b.chain {
            ChainKind::Bitcoin => {
                let addrs: Vec<Value> = b
                    .coinbase
                    .payout_addresses
                    .iter()
                    .map(|a| Value::String(a.as_str().to_string()))
                    .collect();
                serde_json::json!({
                    "number": b.height,
                    "timestamp": format_bq_timestamp(b.timestamp),
                    "coinbase_param": b
                        .coinbase
                        .tag
                        .as_deref()
                        .map(|t| encode_hex(t.as_bytes()))
                        .unwrap_or_default(),
                    "transaction_count": b.tx_count,
                    "size": b.size_bytes,
                    "bits": b.difficulty,
                    "coinbase_addresses": addrs,
                })
            }
            ChainKind::Ethereum => serde_json::json!({
                "number": b.height,
                "timestamp": format_bq_timestamp(b.timestamp),
                "miner": b.coinbase.payout_addresses[0].as_str(),
                "extra_data": b
                    .coinbase
                    .tag
                    .as_deref()
                    .map(|t| format!("0x{}", encode_hex(t.as_bytes())))
                    .unwrap_or_default(),
                "difficulty": b.difficulty,
                "transaction_count": b.tx_count,
                "size": b.size_bytes,
            }),
        };
        serde_json::to_writer(&mut *out, &row)?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// BigQuery's default TIMESTAMP rendering.
fn format_bq_timestamp(t: blockdec_chain::Timestamp) -> String {
    let d = t.date();
    let s = t.seconds_of_day();
    format!(
        "{:04}-{:02}-{:02} {:02}:{:02}:{:02} UTC",
        d.year,
        d.month,
        d.day,
        s / 3600,
        (s / 60) % 60,
        s % 60
    )
}

/// Read a BigQuery JSONL export for the given chain.
pub fn read_bigquery_jsonl(input: impl BufRead, chain: ChainKind) -> Result<Vec<Block>> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line_no = i as u64 + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let row: Value =
            serde_json::from_str(&line).map_err(|e| IngestError::parse(line_no, e.to_string()))?;
        let block = match chain {
            ChainKind::Bitcoin => parse_bitcoin_row(line_no, &row)?,
            ChainKind::Ethereum => parse_ethereum_row(line_no, &row)?,
        };
        out.push(block);
    }
    out.sort_by_key(|b| b.height);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdec_chain::hash::encode_hex;
    use std::io::BufReader;

    #[test]
    fn hex_tag_decoding() {
        let hex = encode_hex("/F2Pool/ mined".as_bytes());
        assert_eq!(hex_to_tag(&hex).unwrap(), "/F2Pool/ mined");
        // Control bytes are filtered.
        let mut bytes = vec![0x03, 0x01];
        bytes.extend_from_slice(b"/slush/");
        assert_eq!(hex_to_tag(&encode_hex(&bytes)).unwrap(), "/slush/");
        assert!(hex_to_tag("zz").is_none());
        assert!(hex_to_tag(&encode_hex(&[0x00, 0x01])).is_none());
    }

    #[test]
    fn parses_bitcoin_row() {
        let coinbase = encode_hex("/poolin.com/".as_bytes());
        let row = format!(
            r#"{{"number": 556459, "timestamp": "2019-01-01 00:14:35 UTC", "coinbase_param": "{coinbase}", "transaction_count": 2500, "size": 1100000, "bits": 389159077}}"#
        );
        let blocks =
            read_bigquery_jsonl(BufReader::new(row.as_bytes()), ChainKind::Bitcoin).unwrap();
        assert_eq!(blocks.len(), 1);
        let b = &blocks[0];
        assert_eq!(b.height, 556_459);
        assert_eq!(b.coinbase.tag.as_deref(), Some("/poolin.com/"));
        assert_eq!(b.tx_count, 2500);
        assert_eq!(b.coinbase.payout_addresses.len(), 1);
    }

    #[test]
    fn bitcoin_placeholder_addresses_group_by_tag() {
        let coinbase = encode_hex("/ViaBTC/".as_bytes());
        let rows = format!(
            "{{\"number\": 1, \"timestamp\": 1546300800, \"coinbase_param\": \"{coinbase}\"}}\n\
             {{\"number\": 2, \"timestamp\": 1546301400, \"coinbase_param\": \"{coinbase}\"}}\n"
        );
        let blocks =
            read_bigquery_jsonl(BufReader::new(rows.as_bytes()), ChainKind::Bitcoin).unwrap();
        assert_eq!(
            blocks[0].coinbase.payout_addresses, blocks[1].coinbase.payout_addresses,
            "same tag must synthesize the same placeholder address"
        );
    }

    #[test]
    fn enriched_bitcoin_addresses_are_used() {
        let addr = Address::synthesize(ChainKind::Bitcoin, 5);
        let row = format!(
            r#"{{"number": 3, "timestamp": 1546300800, "coinbase_addresses": ["{addr}"]}}"#
        );
        let blocks =
            read_bigquery_jsonl(BufReader::new(row.as_bytes()), ChainKind::Bitcoin).unwrap();
        assert_eq!(blocks[0].coinbase.payout_addresses[0], addr);
    }

    #[test]
    fn parses_ethereum_row() {
        let extra = encode_hex("sparkpool-eth-cn".as_bytes());
        let row = format!(
            r#"{{"number": 6988615, "timestamp": "2019-01-01 00:00:15 UTC", "miner": "0x5A0b54D5dc17e0AadC383d2db43B0a0D3E029c4c", "extra_data": "0x{extra}", "difficulty": 2500000000000000, "transaction_count": 120, "size": 30000}}"#
        );
        let blocks =
            read_bigquery_jsonl(BufReader::new(row.as_bytes()), ChainKind::Ethereum).unwrap();
        let b = &blocks[0];
        assert_eq!(b.height, 6_988_615);
        assert_eq!(
            b.coinbase.payout_addresses[0].as_str(),
            "0x5a0b54d5dc17e0aadc383d2db43b0a0d3e029c4c"
        );
        assert_eq!(b.coinbase.tag.as_deref(), Some("sparkpool-eth-cn"));
    }

    #[test]
    fn rows_are_sorted_by_height() {
        let rows = r#"{"number": 5, "timestamp": 1546300800, "miner": "0x5a0b54d5dc17e0aadc383d2db43b0a0d3e029c4c"}
{"number": 3, "timestamp": 1546300700, "miner": "0x5a0b54d5dc17e0aadc383d2db43b0a0d3e029c4c"}"#;
        let blocks =
            read_bigquery_jsonl(BufReader::new(rows.as_bytes()), ChainKind::Ethereum).unwrap();
        assert_eq!(blocks[0].height, 3);
        assert_eq!(blocks[1].height, 5);
    }

    #[test]
    fn missing_fields_error_with_line() {
        let rows = "{\"number\": 1, \"timestamp\": 1546300800, \"miner\": \"0x5a0b54d5dc17e0aadc383d2db43b0a0d3e029c4c\"}\n{\"timestamp\": 1}\n";
        let err =
            read_bigquery_jsonl(BufReader::new(rows.as_bytes()), ChainKind::Ethereum).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn export_import_roundtrip_bitcoin() {
        let blocks: Vec<Block> = (0..5u64)
            .map(|i| {
                let mut b = Block::builder(ChainKind::Bitcoin, 100 + i)
                    .timestamp(blockdec_chain::Timestamp(1_546_300_800 + i as i64 * 600))
                    .difficulty(77)
                    .tx_count(10)
                    .size_bytes(999)
                    .payout(Address::synthesize(ChainKind::Bitcoin, i));
                if i % 2 == 0 {
                    b = b.tag("/F2Pool/");
                }
                b.build().unwrap()
            })
            .collect();
        let mut buf = Vec::new();
        write_bigquery_jsonl(&mut buf, &blocks).unwrap();
        let parsed =
            read_bigquery_jsonl(BufReader::new(buf.as_slice()), ChainKind::Bitcoin).unwrap();
        assert_eq!(parsed.len(), blocks.len());
        for (a, b) in blocks.iter().zip(&parsed) {
            assert_eq!(a.height, b.height);
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.coinbase.tag, b.coinbase.tag);
            assert_eq!(a.coinbase.payout_addresses, b.coinbase.payout_addresses);
            assert_eq!(a.tx_count, b.tx_count);
        }
    }

    #[test]
    fn export_import_roundtrip_ethereum() {
        let blocks: Vec<Block> = (0..5u64)
            .map(|i| {
                Block::builder(ChainKind::Ethereum, 7_000_000 + i)
                    .timestamp(blockdec_chain::Timestamp(1_546_300_800 + i as i64 * 14))
                    .difficulty(2_000_000_000_000)
                    .payout(Address::synthesize(ChainKind::Ethereum, i))
                    .tag("sparkpool-eth")
                    .build()
                    .unwrap()
            })
            .collect();
        let mut buf = Vec::new();
        write_bigquery_jsonl(&mut buf, &blocks).unwrap();
        let parsed =
            read_bigquery_jsonl(BufReader::new(buf.as_slice()), ChainKind::Ethereum).unwrap();
        for (a, b) in blocks.iter().zip(&parsed) {
            assert_eq!(a.height, b.height);
            assert_eq!(a.coinbase.payout_addresses, b.coinbase.payout_addresses);
            assert_eq!(a.coinbase.tag, b.coinbase.tag);
            assert_eq!(a.difficulty, b.difficulty);
        }
    }

    #[test]
    fn numeric_string_fields_are_accepted() {
        // BigQuery exports sometimes stringify big integers.
        let row = r#"{"number": "6988615", "timestamp": 1546300800, "miner": "0xea674fdde714fd979de3edf0f56aa9716b898ec8", "difficulty": "2500000000000000"}"#;
        let blocks =
            read_bigquery_jsonl(BufReader::new(row.as_bytes()), ChainKind::Ethereum).unwrap();
        assert_eq!(blocks[0].difficulty, 2_500_000_000_000_000);
    }
}
