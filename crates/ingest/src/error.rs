//! Ingest error type.

use std::fmt;
use std::io;

/// Errors from parsing external data.
#[derive(Debug)]
pub enum IngestError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed record; carries the 1-based line number when known.
    Parse {
        /// 1-based line number (0 = unknown).
        line: u64,
        /// What went wrong.
        detail: String,
    },
    /// A record parsed but failed chain-model validation.
    Invalid {
        /// 1-based line number.
        line: u64,
        /// The underlying chain error.
        source: blockdec_chain::ChainError,
    },
}

impl IngestError {
    /// Helper for parse failures.
    pub fn parse(line: u64, detail: impl Into<String>) -> IngestError {
        IngestError::Parse {
            line,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "io error: {e}"),
            IngestError::Parse { line, detail } => {
                write!(f, "parse error at line {line}: {detail}")
            }
            IngestError::Invalid { line, source } => {
                write!(f, "invalid record at line {line}: {source}")
            }
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Invalid { source, .. } => Some(source),
            IngestError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> IngestError {
        IngestError::Io(e)
    }
}

/// Ingest result alias.
pub type Result<T> = std::result::Result<T, IngestError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line() {
        let e = IngestError::parse(42, "bad field");
        assert!(e.to_string().contains("line 42"));
        assert!(e.to_string().contains("bad field"));
    }
}
