//! Ingest error type.

use std::fmt;
use std::io;

/// Errors from parsing external data.
#[derive(Debug)]
pub enum IngestError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed record; carries the 1-based line number when known.
    Parse {
        /// 1-based line number (0 = unknown).
        line: u64,
        /// What went wrong.
        detail: String,
    },
    /// A record parsed but failed chain-model validation.
    Invalid {
        /// 1-based line number.
        line: u64,
        /// The underlying chain error.
        source: blockdec_chain::ChainError,
    },
    /// A head block whose parent is neither the tracked head, a pending
    /// ancestor, nor the finalized tip (head-following ingestion).
    UnknownParent {
        /// Height of the rejected block.
        height: u64,
        /// What the block claimed vs. what the view tracks.
        detail: String,
    },
    /// A head block that would reorg at or below the finality watermark —
    /// finalized data never rolls back.
    ReorgBelowFinal {
        /// Height of the rejected block.
        height: u64,
        /// The finalized watermark it would have to undo.
        finalized: u64,
    },
    /// A store operation failed while finalizing head blocks.
    Store(blockdec_store::StoreError),
}

impl IngestError {
    /// Helper for parse failures.
    pub fn parse(line: u64, detail: impl Into<String>) -> IngestError {
        IngestError::Parse {
            line,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "io error: {e}"),
            IngestError::Parse { line, detail } => {
                write!(f, "parse error at line {line}: {detail}")
            }
            IngestError::Invalid { line, source } => {
                write!(f, "invalid record at line {line}: {source}")
            }
            IngestError::UnknownParent { height, detail } => {
                write!(f, "block at height {height} does not attach: {detail}")
            }
            IngestError::ReorgBelowFinal { height, finalized } => {
                write!(
                    f,
                    "block at height {height} reorgs at or below the finalized watermark {finalized}"
                )
            }
            IngestError::Store(e) => write!(f, "store error during finalization: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Invalid { source, .. } => Some(source),
            IngestError::Store(e) => Some(e),
            IngestError::Parse { .. }
            | IngestError::UnknownParent { .. }
            | IngestError::ReorgBelowFinal { .. } => None,
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> IngestError {
        IngestError::Io(e)
    }
}

impl From<blockdec_store::StoreError> for IngestError {
    fn from(e: blockdec_store::StoreError) -> IngestError {
        IngestError::Store(e)
    }
}

/// Ingest result alias.
pub type Result<T> = std::result::Result<T, IngestError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line() {
        let e = IngestError::parse(42, "bad field");
        assert!(e.to_string().contains("line 42"));
        assert!(e.to_string().contains("bad field"));
    }
}
