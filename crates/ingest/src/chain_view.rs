//! Reorg-aware chain tracking for head-following ingestion.
//!
//! [`ChainView`] is the seam between a live block feed (e.g.
//! `blockdec_sim::ChainFeed`) and the durable [`BlockStore`]: it splits
//! the chain into a **finalized** region that has been attributed and
//! appended to the store — and never changes again — and a **pending**
//! tail of the most recent `finality_depth` blocks held in memory, which
//! can still be rolled back by a reorg. The split mirrors apibara's
//! `chain_view`/`ingestion` design (segmented finalized data plus a
//! pending region), adapted to this repo's columnar store.
//!
//! The correctness contract is bitwise: blocks are attributed **only**
//! when they finalize, in canonical order, so the producer registry and
//! the appended rows are exactly what a one-shot batch load of the final
//! chain would produce — however many forks and rollbacks happened along
//! the way. `tests/live_follow.rs` asserts this with `assert_eq!` across
//! the full paper matrix.

use crate::error::{IngestError, Result};
use blockdec_chain::{AttributedBlock, AttributionMode, Attributor, Block, BlockHash, ChainKind};
use blockdec_store::BlockStore;
use std::collections::VecDeque;

/// What one [`ChainView::apply`] call did to the tracked chain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeadUpdate {
    /// Pending blocks dropped because the new block attached to an
    /// ancestor (0 on a plain head extension).
    pub rolled_back: usize,
    /// Blocks that crossed the finality watermark and were appended to
    /// the store.
    pub finalized: usize,
}

/// Cumulative reorg bookkeeping for a view's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReorgStats {
    /// Reorgs applied (rollback events).
    pub applied: u64,
    /// Pending blocks dropped across all reorgs.
    pub blocks_dropped: u64,
    /// Deepest single rollback.
    pub deepest: usize,
}

/// The canonical chain as seen by a head-following consumer: finalized
/// blocks in the store, the pending tail in memory.
pub struct ChainView {
    store: BlockStore,
    attributor: Attributor,
    finality_depth: usize,
    pending: VecDeque<Block>,
    finalized_height: Option<u64>,
    /// Hash of the last finalized block; `None` when the view adopted an
    /// existing store (heights still guard attachment there).
    finalized_hash: Option<BlockHash>,
    accepted: u64,
    finalized: u64,
    reorgs: ReorgStats,
    /// Blocks finalized since the last [`ChainView::take_finalized`] —
    /// the subscription feed for incremental metric deltas.
    outbox: Vec<AttributedBlock>,
}

impl ChainView {
    /// Track a chain into `store`, attributing with `mode`. Blocks deeper
    /// than `finality_depth` below the head are finalized into the store;
    /// a reorg can never reach them. If the store already holds rows, its
    /// last height becomes the finalized watermark and the next applied
    /// block must sit directly above it.
    pub fn new(
        store: BlockStore,
        chain: ChainKind,
        mode: AttributionMode,
        finality_depth: usize,
    ) -> ChainView {
        let finalized_height = store.last_height();
        ChainView {
            store,
            attributor: Attributor::new(chain, mode),
            finality_depth,
            pending: VecDeque::new(),
            finalized_height,
            finalized_hash: None,
            accepted: 0,
            finalized: 0,
            reorgs: ReorgStats::default(),
            outbox: Vec::new(),
        }
    }

    /// Apply one head event: extend the tip, or roll back to the block's
    /// parent and adopt the new branch. Blocks pushed deeper than the
    /// finality depth are attributed and appended to the store.
    pub fn apply(&mut self, block: &Block) -> Result<HeadUpdate> {
        let rolled_back = self.attach(block)?;
        self.pending.push_back(block.clone());
        self.accepted += 1;
        blockdec_obs::counter("ingest.head.accepted").inc();
        let finalized = self.finalize_excess(self.finality_depth)?;
        Ok(HeadUpdate {
            rolled_back,
            finalized,
        })
    }

    /// Find where `block` attaches and drop any pending blocks above that
    /// point. Returns the rollback depth.
    fn attach(&mut self, block: &Block) -> Result<usize> {
        // Fast path: plain head extension (also the very first block of a
        // fresh view, which may start at any height).
        match self.pending.back() {
            Some(tip) if block.parent == tip.hash && block.height == tip.height + 1 => {
                return Ok(0)
            }
            None => {
                return match self.finalized_height {
                    None => Ok(0),
                    Some(h) if block.height == h + 1 => match self.finalized_hash {
                        Some(fh) if fh != block.parent => Err(IngestError::ReorgBelowFinal {
                            height: block.height,
                            finalized: h,
                        }),
                        _ => Ok(0),
                    },
                    Some(h) if block.height <= h => Err(IngestError::ReorgBelowFinal {
                        height: block.height,
                        finalized: h,
                    }),
                    Some(h) => Err(IngestError::UnknownParent {
                        height: block.height,
                        detail: format!("finalized tip is at height {h}"),
                    }),
                };
            }
            Some(_) => {}
        }
        // Reorg: walk the pending tail back to the block's parent.
        if let Some(pos) = self.pending.iter().rposition(|p| p.hash == block.parent) {
            if self.pending[pos].height + 1 != block.height {
                return Err(IngestError::UnknownParent {
                    height: block.height,
                    detail: format!(
                        "parent hash matches pending height {} (expected height {})",
                        self.pending[pos].height,
                        self.pending[pos].height + 1
                    ),
                });
            }
            return Ok(self.roll_back_to(pos + 1));
        }
        // Full-tail rollback: the branch attaches directly above the
        // finalized tip.
        if let Some(h) = self.finalized_height {
            if block.height == h + 1 && self.finalized_hash.is_none_or(|fh| fh == block.parent) {
                return Ok(self.roll_back_to(0));
            }
            let floor = self.pending.front().map_or(h + 1, |f| f.height);
            if block.height <= floor {
                return Err(IngestError::ReorgBelowFinal {
                    height: block.height,
                    finalized: h,
                });
            }
        }
        Err(IngestError::UnknownParent {
            height: block.height,
            detail: format!(
                "parent {} not found in the pending tail ({} block(s))",
                block.parent,
                self.pending.len()
            ),
        })
    }

    /// Truncate the pending tail to `keep` blocks, recording the reorg.
    fn roll_back_to(&mut self, keep: usize) -> usize {
        let dropped = self.pending.len() - keep;
        self.pending.truncate(keep);
        self.reorgs.applied += 1;
        self.reorgs.blocks_dropped += dropped as u64;
        self.reorgs.deepest = self.reorgs.deepest.max(dropped);
        blockdec_obs::counter("ingest.reorg.applied").inc();
        blockdec_obs::counter("ingest.reorg.blocks_dropped").add(dropped as u64);
        dropped
    }

    /// Finalize pending blocks beyond `keep`: attribute them in canonical
    /// order and append to the store.
    fn finalize_excess(&mut self, keep: usize) -> Result<usize> {
        if self.pending.len() <= keep {
            return Ok(0);
        }
        let n = self.pending.len() - keep;
        let drained: Vec<Block> = self.pending.drain(..n).collect();
        let attributed: Vec<AttributedBlock> = drained
            .iter()
            .map(|b| self.attributor.attribute(b))
            .collect();
        self.store
            .append_attributed(&attributed, self.attributor.registry())?;
        let last = &drained[drained.len() - 1];
        self.finalized_height = Some(last.height);
        self.finalized_hash = Some(last.hash);
        self.finalized += n as u64;
        self.outbox.extend(attributed);
        blockdec_obs::counter("ingest.head.finalized").add(n as u64);
        Ok(n)
    }

    /// Drain the blocks finalized since the last call, in canonical
    /// order — exactly the rows just appended to the store. A follow
    /// loop pushes these into its metric delta streams after each
    /// [`ChainView::apply`]; an undrained outbox simply keeps growing.
    pub fn take_finalized(&mut self) -> Vec<AttributedBlock> {
        std::mem::take(&mut self.outbox)
    }

    /// Finalize the entire pending tail (end of feed) and flush the
    /// store. Returns how many blocks were finalized.
    pub fn finalize_all(&mut self) -> Result<usize> {
        let n = self.finalize_excess(0)?;
        self.flush()?;
        Ok(n)
    }

    /// Seal buffered rows into a segment and commit.
    pub fn flush(&mut self) -> Result<()> {
        self.store.flush()?;
        Ok(())
    }

    /// Height of the current head (pending tip, falling back to the
    /// finalized tip); `None` for an empty view.
    pub fn head_height(&self) -> Option<u64> {
        self.pending
            .back()
            .map(|b| b.height)
            .or(self.finalized_height)
    }

    /// The finalized watermark: height of the last block appended to the
    /// store.
    pub fn finalized_height(&self) -> Option<u64> {
        self.finalized_height
    }

    /// Pending (rollback-able) blocks currently held in memory.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The pending tail in chain order, oldest first.
    pub fn pending_blocks(&self) -> impl Iterator<Item = &Block> {
        self.pending.iter()
    }

    /// Blocks accepted over the view's lifetime (including ones later
    /// rolled back).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Blocks finalized into the store over the view's lifetime.
    pub fn finalized(&self) -> u64 {
        self.finalized
    }

    /// Cumulative reorg bookkeeping.
    pub fn reorg_stats(&self) -> ReorgStats {
        self.reorgs
    }

    /// The underlying store (finalized blocks only).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Mutable access to the underlying store.
    pub fn store_mut(&mut self) -> &mut BlockStore {
        &mut self.store
    }

    /// Tear down the view, keeping the store.
    pub fn into_store(self) -> BlockStore {
        self.store
    }
}

/// Measuring a [`ChainView`] measures its *finalized* region: the store
/// is the single source of truth for metric values, so a follow pipeline
/// and a batch pipeline read identical bytes.
impl blockdec_query::MeasurementSource for ChainView {
    fn attributed_blocks(
        &self,
        filter: &blockdec_query::Filter,
    ) -> blockdec_store::error::Result<Vec<AttributedBlock>> {
        self.store.attributed_blocks(filter)
    }

    fn block_columns(
        &self,
        filter: &blockdec_query::Filter,
    ) -> blockdec_store::error::Result<blockdec_chain::BlockColumns> {
        self.store.block_columns(filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdec_chain::Timestamp;
    use std::path::PathBuf;

    fn tmp_store(tag: &str) -> (BlockStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "blockdec-chainview-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (BlockStore::create(&dir).unwrap(), dir)
    }

    fn block(height: u64, parent: BlockHash, salt: u64) -> Block {
        let hash = BlockHash::digest(0xc0ffee ^ salt, height);
        Block::builder(ChainKind::Bitcoin, height)
            .hash(hash)
            .parent(parent)
            .timestamp(Timestamp(1_546_300_800 + height as i64 * 600))
            .difficulty(1)
            .tx_count(1)
            .size_bytes(300)
            .payouts(vec![blockdec_chain::Address::synthesize(
                ChainKind::Bitcoin,
                height % 3,
            )])
            .build()
            .unwrap()
    }

    fn chain_of(n: u64, salt: u64) -> Vec<Block> {
        let mut parent = BlockHash::ZERO;
        (0..n)
            .map(|h| {
                let b = block(h, parent, salt);
                parent = b.hash;
                b
            })
            .collect()
    }

    fn view(finality: usize, tag: &str) -> (ChainView, PathBuf) {
        let (store, dir) = tmp_store(tag);
        (
            ChainView::new(
                store,
                ChainKind::Bitcoin,
                AttributionMode::PerAddress,
                finality,
            ),
            dir,
        )
    }

    #[test]
    fn extends_and_finalizes_past_the_watermark() {
        let (mut v, dir) = view(3, "extend");
        let chain = chain_of(10, 0);
        let mut finalized = 0;
        for b in &chain {
            let u = v.apply(b).unwrap();
            assert_eq!(u.rolled_back, 0);
            finalized += u.finalized;
        }
        assert_eq!(v.pending_len(), 3);
        assert_eq!(finalized, 7);
        assert_eq!(v.finalized_height(), Some(6));
        assert_eq!(v.head_height(), Some(9));
        let drained = v.take_finalized();
        assert_eq!(
            drained.iter().map(|b| b.height).collect::<Vec<_>>(),
            (0..7).collect::<Vec<_>>()
        );
        assert_eq!(v.finalize_all().unwrap(), 3);
        assert_eq!(v.take_finalized().len(), 3);
        assert!(v.take_finalized().is_empty());
        assert_eq!(v.pending_len(), 0);
        assert_eq!(v.store().row_count(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reorg_drops_the_stale_branch() {
        let (mut v, dir) = view(5, "reorg");
        let chain = chain_of(4, 0);
        for b in &chain {
            v.apply(b).unwrap();
        }
        // A 2-block stale branch on top of height 1, then the canonical
        // blocks win back.
        let fork2 = block(2, chain[1].hash, 99);
        let fork3 = block(3, fork2.hash, 99);
        let v2 = {
            let (mut v2, dir2) = view(5, "reorg2");
            for b in &chain[..2] {
                v2.apply(b).unwrap();
            }
            v2.apply(&fork2).unwrap();
            v2.apply(&fork3).unwrap();
            assert_eq!(v2.head_height(), Some(3));
            let u = v2.apply(&chain[2]).unwrap();
            assert_eq!(u.rolled_back, 2);
            v2.apply(&chain[3]).unwrap();
            std::fs::remove_dir_all(&dir2).unwrap();
            v2
        };
        assert_eq!(v2.reorg_stats().applied, 1);
        assert_eq!(v2.reorg_stats().blocks_dropped, 2);
        let straight: Vec<u64> = v.pending_blocks().map(|b| b.height).collect();
        let reorged: Vec<u64> = v2.pending_blocks().map(|b| b.height).collect();
        assert_eq!(straight, reorged);
        let hashes_a: Vec<BlockHash> = v.pending_blocks().map(|b| b.hash).collect();
        let hashes_b: Vec<BlockHash> = v2.pending_blocks().map(|b| b.hash).collect();
        assert_eq!(hashes_a, hashes_b, "reorg must converge to canonical");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reorg_below_finality_is_rejected() {
        let (mut v, dir) = view(2, "deep");
        let chain = chain_of(8, 0);
        for b in &chain {
            v.apply(b).unwrap();
        }
        assert_eq!(v.finalized_height(), Some(5));
        // A branch trying to replace finalized height 5.
        let deep = block(5, chain[4].hash, 7);
        match v.apply(&deep) {
            Err(IngestError::ReorgBelowFinal { height, finalized }) => {
                assert_eq!(height, 5);
                assert_eq!(finalized, 5);
            }
            other => panic!("expected ReorgBelowFinal, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_parent_is_rejected() {
        let (mut v, dir) = view(4, "unknown");
        for b in &chain_of(4, 0) {
            v.apply(b).unwrap();
        }
        let stray = block(4, BlockHash::digest(0xdead, 4), 1);
        assert!(matches!(
            v.apply(&stray),
            Err(IngestError::UnknownParent { height: 4, .. })
        ));
        // The view is unchanged and keeps accepting good blocks.
        assert_eq!(v.head_height(), Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn full_tail_rollback_attaches_at_the_finalized_tip() {
        let (mut v, dir) = view(2, "fulltail");
        let chain = chain_of(5, 0);
        for b in &chain {
            v.apply(b).unwrap();
        }
        // Pending is {3, 4}; a branch from finalized tip 2 replaces both.
        assert_eq!(v.finalized_height(), Some(2));
        let alt3 = block(3, chain[2].hash, 42);
        let u = v.apply(&alt3).unwrap();
        assert_eq!(u.rolled_back, 2);
        assert_eq!(v.head_height(), Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn adopting_an_existing_store_guards_heights() {
        let dir = {
            let (mut v, dir) = view(0, "adopt");
            for b in &chain_of(3, 0) {
                v.apply(b).unwrap();
            }
            v.finalize_all().unwrap();
            dir
        };
        let store = BlockStore::open(&dir).unwrap();
        let mut v = ChainView::new(store, ChainKind::Bitcoin, AttributionMode::PerAddress, 2);
        assert_eq!(v.finalized_height(), Some(2));
        // Wrong height: rejected. Right height: accepted (hash unknown).
        assert!(v.apply(&block(7, BlockHash::ZERO, 0)).is_err());
        let next = block(3, BlockHash::digest(0xc0ffee, 2), 0);
        v.apply(&next).unwrap();
        assert_eq!(v.head_height(), Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
