//! Offline, API-compatible subset of `serde_json`.
//!
//! Re-exports the stub serde's [`Value`] tree and adds a complete JSON
//! text parser and compact/pretty printers. Floats round-trip (the
//! printer emits the shortest decimal form that parses back to the same
//! bits, via Rust's `Display`), matching the `float_roundtrip` feature
//! of real serde_json that the workspace enables.

pub use serde::value::{Map, Number, Value};
use serde::{Deserialize, Serialize};

/// Serialization / deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::new(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

/// `Result` alias matching serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstruct a deserializable type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_string())
}

/// Serialize to a pretty (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut s = String::new();
    value.to_value().write_pretty(&mut s, 0);
    Ok(s)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Serialize compact JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse::parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON bytes into any deserializable type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Build a [`Value`] in place. Supports the object-literal form used by
/// the workspace (`json!({"key": expr, ...})`), plain `null`, and any
/// serializable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert($key.to_string(), $crate::to_value(&$val)); )*
        $crate::Value::Object(__m)
    }};
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

mod parse {
    use super::{Error, Map, Number, Result, Value};

    pub fn parse(s: &str) -> Result<Value> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    const MAX_DEPTH: usize = 128;

    impl<'a> Parser<'a> {
        fn err(&self, msg: &str) -> Error {
            Error::new(format!("{msg} at byte {}", self.pos))
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while let Some(b) = self.peek() {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn expect(&mut self, b: u8) -> Result<()> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected `{}`", b as char)))
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(self.err("invalid literal"))
            }
        }

        fn value(&mut self, depth: usize) -> Result<Value> {
            if depth > MAX_DEPTH {
                return Err(self.err("recursion limit exceeded"));
            }
            match self.peek() {
                Some(b'n') => self.literal("null", Value::Null),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'"') => self.string().map(Value::String),
                Some(b'[') => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    loop {
                        self.skip_ws();
                        items.push(self.value(depth + 1)?);
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b']') => {
                                self.pos += 1;
                                return Ok(Value::Array(items));
                            }
                            _ => return Err(self.err("expected `,` or `]`")),
                        }
                    }
                }
                Some(b'{') => {
                    self.pos += 1;
                    let mut m = Map::new();
                    self.skip_ws();
                    if self.peek() == Some(b'}') {
                        self.pos += 1;
                        return Ok(Value::Object(m));
                    }
                    loop {
                        self.skip_ws();
                        let key = self.string()?;
                        self.skip_ws();
                        self.expect(b':')?;
                        self.skip_ws();
                        let v = self.value(depth + 1)?;
                        m.insert(key, v);
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b'}') => {
                                self.pos += 1;
                                return Ok(Value::Object(m));
                            }
                            _ => return Err(self.err("expected `,` or `}`")),
                        }
                    }
                }
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(self.err("expected value")),
            }
        }

        fn string(&mut self) -> Result<String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
                match b {
                    b'"' => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    b'\\' => {
                        self.pos += 1;
                        let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                        self.pos += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hi = self.hex4()?;
                                let c = if (0xD800..0xDC00).contains(&hi) {
                                    // surrogate pair
                                    if self.bytes[self.pos..].starts_with(b"\\u") {
                                        self.pos += 2;
                                        let lo = self.hex4()?;
                                        if !(0xDC00..0xE000).contains(&lo) {
                                            return Err(self.err("invalid low surrogate"));
                                        }
                                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(cp)
                                            .ok_or_else(|| self.err("invalid surrogate pair"))?
                                    } else {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                } else if (0xDC00..0xE000).contains(&hi) {
                                    return Err(self.err("unpaired surrogate"));
                                } else {
                                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u"))?
                                };
                                out.push(c);
                            }
                            _ => return Err(self.err("unknown escape")),
                        }
                    }
                    0x00..=0x1F => return Err(self.err("control character in string")),
                    _ => {
                        // Consume one UTF-8 scalar (input is valid UTF-8).
                        let start = self.pos;
                        let len = utf8_len(b);
                        self.pos += len;
                        let s = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                    }
                }
            }
        }

        fn hex4(&mut self) -> Result<u32> {
            if self.pos + 4 > self.bytes.len() {
                return Err(self.err("truncated \\u escape"));
            }
            let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                .map_err(|_| self.err("bad \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
            self.pos += 4;
            Ok(v)
        }

        fn number(&mut self) -> Result<Value> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            let mut is_float = false;
            if self.peek() == Some(b'.') {
                is_float = true;
                self.pos += 1;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                is_float = true;
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("bad number"))?;
            if !is_float {
                if let Ok(u) = text.parse::<u64>() {
                    return Ok(Value::Number(Number::from(u)));
                }
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::from(i)));
                }
                // Integer out of 64-bit range: fall through to f64.
            }
            let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::from_f64(f)))
        }
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-5", "12345678901234567890"] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn float_roundtrip_bits() {
        for f in [0.1, 1.0, -0.0, 1e300, 5e-324, std::f64::consts::PI] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {s} -> {back}");
        }
    }

    #[test]
    fn string_escapes() {
        let v: Value = from_str(r#""a\n\t\"\\\u0041\ud83d\ude00b""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\t\"\\A\u{1F600}b");
        let round: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn object_and_array() {
        let v: Value = from_str(r#"{"b": [1, 2.5, "x"], "a": null}"#).unwrap();
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        assert!(v.get("a").unwrap().is_null());
        // compact output sorts keys (BTreeMap-backed map)
        assert_eq!(to_string(&v).unwrap(), r#"{"a":null,"b":[1,2.5,"x"]}"#);
    }

    #[test]
    fn json_macro_object() {
        let addrs = vec![Value::String("x".into())];
        let v = json!({"n": 5u64, "s": "hi", "list": addrs});
        assert_eq!(to_string(&v).unwrap(), r#"{"list":["x"],"n":5,"s":"hi"}"#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"\\q\"").is_err());
    }
}
