//! Deterministic RNG, configuration, and case-error plumbing for the
//! `proptest!` runner macro.

/// Per-test configuration. Only `cases` is meaningful in the stub.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; 64 keeps the heavier blockdec
        // suites fast while still exploring broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — draw a fresh case.
    Reject(String),
    /// `prop_assert*!` failed — the property is falsified.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// splitmix64: tiny, fast, and plenty for test-case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG; the same seed yields the same stream.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x51ca_acc2_61e9_b3d5,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [lo, hi); returns `lo` when the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// Deterministic per-test seed derived from the test's module path and
/// name (FNV-1a), so failures are reproducible run to run.
pub fn initial_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
