//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use crate::GenFn;
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Discard values failing the predicate (regenerating up to a bound).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> FilterStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy {
            inner: self,
            reason,
            f,
        }
    }

    /// Generate a value, then derive a second strategy from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMapStrategy { inner: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves, and `branch`
    /// wraps an inner strategy into a composite one. `depth` bounds the
    /// nesting; `_target_size` and `_expected_branch` are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _target_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let composite = branch(current).boxed();
            let leaf2 = leaf.clone();
            // Half leaves, half composites at each level keeps depth
            // distribution similar to real proptest's recursive unions.
            current = BoxedStrategy::from_fn(move |rng| {
                if rng.next_u64() & 1 == 0 {
                    leaf2.generate(rng)
                } else {
                    composite.generate(rng)
                }
            });
        }
        current
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct FilterStrategy<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for FilterStrategy<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}): rejected 10000 consecutive values",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: GenFn<T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Arc::clone(&self.gen),
        }
    }
}

impl<T> BoxedStrategy<T> {
    pub(crate) fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { gen: Arc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}
