//! Offline subset of the `proptest` property-testing framework.
//!
//! Implements the API surface the blockdec test suites use — the
//! `proptest!` runner macro, `Strategy` with `prop_map` / `prop_filter` /
//! `prop_recursive`, range and regex-character-class strategies,
//! collections, tuples, `prop_oneof!`, `Just`, `any::<T>()`, and
//! `sample::Index` — on top of a deterministic splitmix64 RNG.
//!
//! Differences from real proptest: no shrinking (failures report the
//! case seed instead of a minimized input), and string strategies accept
//! only the `[class]{m,n}` regex shape the test suites use.

use std::ops::Range;
use std::sync::Arc;

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::{TestCaseError, TestRng};

/// The glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Namespaced strategy modules, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::collection::{btree_map, vec};
    }
    /// Character strategies.
    pub mod char {
        pub use crate::char_strategy::range;
    }
    /// `Option` strategies.
    pub mod option {
        use crate::strategy::{BoxedStrategy, Strategy};

        /// `Option<T>` that is `Some` half the time.
        pub fn of<S: Strategy + 'static>(inner: S) -> BoxedStrategy<Option<S::Value>>
        where
            S::Value: 'static,
        {
            BoxedStrategy::from_fn(move |rng| {
                if rng.next_u64() & 1 == 0 {
                    None
                } else {
                    Some(inner.generate(rng))
                }
            })
        }
    }
    pub use crate::sample;
}

/// `any::<T>()` — the canonical strategy for a type.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

/// Types with a canonical random generator.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_uint!(u8, u16, u32, u64, usize);

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// Mix of uniform [0,1), scaled magnitudes, raw bit patterns, and
    /// special values — raw bits alone would almost never produce the
    /// small "ordinary" numbers most properties exercise.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.next_u64() % 8 {
            0 => f64::from_bits(rng.next_u64()),
            1 => 0.0,
            2 => -1.0,
            3 => (rng.next_u64() % 10_000) as f64,
            4 => -((rng.next_u64() % 10_000) as f64),
            _ => {
                let mantissa = rng.unit_f64() * 2.0 - 1.0;
                let exp = (rng.next_u64() % 61) as i32 - 30;
                mantissa * 10f64.powi(exp)
            }
        }
    }
}

/// `proptest::sample` — index sampling.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// A position into a collection whose length is unknown at
    /// generation time; resolved with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Map this sample onto `0..len` (`len` must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.range_usize(self.size.start, self.size.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>` with `size` entries (duplicate keys
    /// collapse, like real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = rng.range_usize(self.size.start, self.size.end);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Character strategies (`prop::char`).
pub mod char_strategy {
    use super::{Strategy, TestRng};

    /// Uniform character in `lo..=hi` (by code point).
    pub fn range(lo: char, hi: char) -> CharRange {
        CharRange { lo, hi }
    }

    /// See [`range`].
    pub struct CharRange {
        lo: char,
        hi: char,
    }

    impl Strategy for CharRange {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            let lo = self.lo as u32;
            let hi = self.hi as u32;
            loop {
                let v = lo + (rng.next_u64() % u64::from(hi - lo + 1)) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + off) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let lo = self.start as u32;
        let hi = self.end as u32;
        assert!(lo < hi, "empty range strategy");
        loop {
            let v = lo + (rng.next_u64() % u64::from(hi - lo)) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// String strategies from regex-like patterns
// ---------------------------------------------------------------------------

/// Parsed `[class]{m,n}` pattern.
struct CharClassPattern {
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Option<CharClassPattern> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let rest = &rest[close + 1..];
    let rest = rest.strip_prefix('{')?;
    let rest = rest.strip_suffix('}')?;
    let (min, max) = match rest.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = rest.parse().ok()?;
            (n, n)
        }
    };
    let chars: Vec<char> = class.chars().collect();
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            ranges.push((chars[i], chars[i + 2]));
            i += 3;
        } else {
            ranges.push((chars[i], chars[i]));
            i += 1;
        }
    }
    if ranges.is_empty() {
        return None;
    }
    Some(CharClassPattern { ranges, min, max })
}

impl Strategy for &'static str {
    type Value = String;
    /// Interpret the string as a `[class]{m,n}` regex (the only shape
    /// the workspace's tests use) and generate matching strings.
    fn generate(&self, rng: &mut TestRng) -> String {
        let p = parse_pattern(self).unwrap_or_else(|| {
            panic!("proptest stub: unsupported string pattern {self:?} (expected [class]{{m,n}})")
        });
        let n = p.min + (rng.next_u64() as usize) % (p.max - p.min + 1);
        (0..n)
            .map(|_| {
                let (lo, hi) = p.ranges[(rng.next_u64() as usize) % p.ranges.len()];
                let span = hi as u32 - lo as u32 + 1;
                char::from_u32(lo as u32 + (rng.next_u64() % u64::from(span)) as u32).unwrap_or(lo)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Union of same-valued strategies; used by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Uniform choice between the options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() as usize) % self.options.len();
        self.options[i].generate(rng)
    }
}

/// Uniform choice among boxed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert inside a proptest body; failure reports the message without
/// panicking past the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion with value output.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)*);
    }};
}

/// Inequality assertion with value output.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

/// Discard the current case (the runner draws a replacement).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Define property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u64..100, mut v in some_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __cases: u32 = __config.cases;
                let __max_rejects: u32 = __cases.saturating_mul(16).saturating_add(256);
                let mut __seed: u64 = $crate::test_runner::initial_seed(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut __accepted: u32 = 0;
                let mut __rejected: u32 = 0;
                while __accepted < __cases {
                    let __case_seed = __seed;
                    let mut __rng = $crate::test_runner::TestRng::new(__case_seed);
                    __seed = __seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    $(let $pat = $crate::Strategy::generate(&$strat, &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __result {
                        ::std::result::Result::Ok(()) => { __accepted += 1; }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(__why),
                        ) => {
                            __rejected += 1;
                            if __rejected > __max_rejects {
                                panic!(
                                    "proptest {}: too many rejected cases ({}): last prop_assume: {}",
                                    stringify!($name), __rejected, __why
                                );
                            }
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest {} failed (case {} of {}, seed {:#x}):\n{}",
                                stringify!($name), __accepted + 1, __cases, __case_seed, __msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Used by `Strategy::boxed`.
pub(crate) type GenFn<T> = Arc<dyn Fn(&mut TestRng) -> T>;
