//! Offline subset of the `criterion` benchmark harness.
//!
//! Implements the API the blockdec benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `iter`/`iter_batched`, `Throughput`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) with a simple wall-clock
//! measurement loop: warm up briefly, then run `sample_size` samples and
//! report the median iteration time to stdout. No statistics engine, no
//! HTML reports, no comparison with saved baselines.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The stub runs one routine
/// call per setup call regardless of variant.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: batch many per allocation in real criterion.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// Per-iteration allocation.
    PerIteration,
}

/// Declared per-iteration workload, echoed in the output so
/// throughput-style benches stay readable.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement context handed to bench closures.
pub struct Bencher {
    samples: usize,
    last_median: Duration,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few calls to fault in caches and branch predictors.
        for _ in 0..2 {
            black_box(routine());
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort();
        self.last_median = times[times.len() / 2];
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..2 {
            black_box(routine(setup()));
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed());
        }
        times.sort();
        self.last_median = times[times.len() / 2];
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Criterion {
        run_one(&name.to_string(), self.sample_size, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration workload.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Run a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// End the group (output flushes eagerly; kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        last_median: Duration::ZERO,
    };
    f(&mut b);
    let median = b.last_median;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / median.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench: {name:<60} median {median:>12.3?}{rate}");
}

/// Declare a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
