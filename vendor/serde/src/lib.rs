//! Offline, API-compatible subset of `serde` used by the `blockdec`
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the small slice of serde the workspace actually uses:
//! the `Serialize` / `Deserialize` traits (here defined over a concrete
//! self-describing JSON value tree instead of serde's visitor machinery)
//! plus the derive macros re-exported from `serde_derive`. The companion
//! `serde_json` stub builds its parser and printers on [`value::Value`].
//!
//! Behaviour intentionally mirrors real serde where the workspace can
//! observe it: newtype structs serialize transparently, enums are
//! externally tagged, missing `Option` fields deserialize to `None`, and
//! non-finite floats serialize as `null`.

pub mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error: a message describing what went wrong.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Error with a custom message.
    pub fn custom(msg: impl std::fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
    /// "invalid type" error.
    pub fn expected(what: &str, for_type: &str) -> DeError {
        DeError(format!("invalid type: expected {what} for {for_type}"))
    }
    /// "missing field" error.
    pub fn missing_field(name: &str) -> DeError {
        DeError(format!("missing field `{name}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` to a JSON value.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert a JSON value to `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called by derived code when a struct field is absent. `Option`
    /// overrides this to produce `None`; everything else errors.
    fn from_missing(field: &'static str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field))
    }
}

/// Derived-code helper: fetch + deserialize a struct field.
#[doc(hidden)]
pub fn __field<T: Deserialize>(m: &Map, name: &'static str) -> Result<T, DeError> {
    match m.get(name) {
        Some(v) => T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => T::from_missing(name),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self as i64))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::expected("unsigned integer", stringify!($t))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| {
                    DeError::expected("integer", stringify!($t))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("string", "char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(std::sync::Arc::from)
            .ok_or_else(|| DeError::expected("string", "Arc<str>"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
    fn from_missing(_field: &'static str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v
            .as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?;
        a.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v
            .as_array()
            .ok_or_else(|| DeError::expected("array", "array"))?;
        if a.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                a.len()
            )));
        }
        let items: Vec<T> = a.iter().map(T::from_value).collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", "BTreeMap"))?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", "HashMap"))?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", "tuple"))?;
                if a.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {}, got {}", $len, a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
}
