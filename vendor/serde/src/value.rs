//! The self-describing JSON value tree the stub serde traits target.
//!
//! `serde_json` re-exports these types as `serde_json::{Value, Map,
//! Number}`; they are defined here so the `Serialize` / `Deserialize`
//! traits can reference them without a circular dependency.

use std::collections::BTreeMap;
use std::fmt;

/// An owned JSON object: string keys in sorted order (matching
/// `serde_json` without `preserve_order`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    inner: BTreeMap<String, Value>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Map {
        Map::default()
    }
    /// Insert, returning any previous value for the key.
    pub fn insert(&mut self, k: String, v: Value) -> Option<Value> {
        self.inner.insert(k, v)
    }
    /// Look up a key.
    pub fn get(&self, k: &str) -> Option<&Value> {
        self.inner.get(k)
    }
    /// True when the key is present.
    pub fn contains_key(&self, k: &str) -> bool {
        self.inner.contains_key(k)
    }
    /// Remove a key.
    pub fn remove(&mut self, k: &str) -> Option<Value> {
        self.inner.remove(k)
    }
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }
    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.inner.iter()
    }
    /// Iterate keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.inner.keys()
    }
    /// Iterate values in key order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.inner.values()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        Map {
            inner: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// A JSON number: unsigned, signed, or floating point.
///
/// Non-negative integers normalize to the unsigned variant so that
/// `Number::from(5i64) == Number::from(5u64)`.
#[derive(Clone, Copy, Debug)]
pub struct Number(N);

#[derive(Clone, Copy, Debug)]
enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    /// Build from an f64 (non-finite values are preserved here and
    /// rendered as `null` by the serializer, matching serde_json).
    pub fn from_f64(f: f64) -> Number {
        Number(N::F(f))
    }
    /// The value as u64, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::U(u) => Some(u),
            N::I(i) => u64::try_from(i).ok(),
            N::F(_) => None,
        }
    }
    /// The value as i64, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::U(u) => i64::try_from(u).ok(),
            N::I(i) => Some(i),
            N::F(_) => None,
        }
    }
    /// The value as f64 (integers convert lossily beyond 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::U(u) => Some(u as f64),
            N::I(i) => Some(i as f64),
            N::F(f) => Some(f),
        }
    }
    /// True for the unsigned variant.
    pub fn is_u64(&self) -> bool {
        matches!(self.0, N::U(_))
    }
    /// True for the signed variant.
    pub fn is_i64(&self) -> bool {
        matches!(self.0, N::I(_))
    }
    /// True for the float variant.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::F(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.0, other.0) {
            (N::U(a), N::U(b)) => a == b,
            (N::I(a), N::I(b)) => a == b,
            (N::F(a), N::F(b)) => a == b,
            _ => false,
        }
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Number {
        Number(N::U(v))
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Number {
        if v >= 0 {
            Number(N::U(v as u64))
        } else {
            Number(N::I(v))
        }
    }
}

macro_rules! number_from {
    ($($t:ty => $via:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Number {
                Number::from(v as $via)
            }
        }
    )*};
}
number_from!(u8 => u64, u16 => u64, u32 => u64, usize => u64,
             i8 => i64, i16 => i64, i32 => i64, isize => i64);

/// Render an f64 the way serde_json's `float_roundtrip` mode does:
/// shortest decimal that round-trips, with a trailing `.0` on integral
/// values so the token re-parses as a float.
pub(crate) fn format_f64(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    if f == f.trunc() && f.abs() < 1e16 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::U(u) => write!(f, "{u}"),
            N::I(i) => write!(f, "{i}"),
            N::F(x) => f.write_str(&format_f64(x)),
        }
    }
}

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// Object field lookup (None for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    /// Boolean content.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    /// u64 content.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }
    /// i64 content.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }
    /// f64 content (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }
    /// Array content.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    /// Object content.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
    /// Externally-tagged single-entry object, used by derived enum code.
    #[doc(hidden)]
    pub fn tagged(tag: &str, inner: Value) -> Value {
        let mut m = Map::new();
        m.insert(tag.to_string(), inner);
        Value::Object(m)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::from_f64(v))
    }
}
impl From<Number> for Value {
    fn from(v: Number) -> Value {
        Value::Number(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}
impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::from(v))
            }
        }
    )*};
}
value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Write `s` as a JSON string literal (quotes + escapes) into `out`.
pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    /// Compact JSON rendering into a string buffer.
    #[doc(hidden)]
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty (2-space indented) JSON rendering.
    #[doc(hidden)]
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Value::Array(a) if !a.is_empty() => {
                out.push_str("[\n");
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=indent {
                        out.push_str(PAD);
                    }
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push_str(PAD);
                }
                out.push(']');
            }
            Value::Object(m) if !m.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=indent {
                        out.push_str(PAD);
                    }
                    escape_into(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push_str(PAD);
                }
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON, like `serde_json::Value`'s `Display`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}
