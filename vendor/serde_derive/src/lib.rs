//! `#[derive(Serialize, Deserialize)]` for the offline serde stub.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). The parser handles the shapes the
//! workspace uses:
//!
//! * structs with named fields;
//! * tuple structs (1 field = transparent newtype, n fields = array);
//! * unit structs;
//! * enums with unit, newtype, and struct variants (externally tagged).
//!
//! Generics are rejected with a compile error (no workspace type needs
//! them). `#[serde(...)]` attributes are accepted and ignored — the only
//! one the workspace uses is `transparent` on newtype structs, which is
//! already this macro's default newtype behaviour (matching real serde).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: name (named fields) or index (tuple fields).
enum Fields {
    /// `struct S;`
    Unit,
    /// `struct S(T, U);` — arity only; types aren't needed.
    Tuple(usize),
    /// `struct S { a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip any number of `#[...]` attribute groups.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip `pub`, `pub(crate)`, `pub(super)`, `pub(in ...)`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Split a comma-delimited token sequence at top level (groups keep
/// their commas internal because they arrive as single `Group` trees).
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for t in tokens {
        if let TokenTree::Punct(p) = &t {
            if p.as_char() == ',' {
                out.push(std::mem::take(&mut cur));
                continue;
            }
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parse `{ a: T, b: U }` field names.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let mut names = Vec::new();
    for item in split_commas(group.stream().into_iter().collect()) {
        let mut i = skip_attrs(&item, 0);
        i = skip_vis(&item, i);
        if let Some(TokenTree::Ident(id)) = item.get(i) {
            names.push(id.to_string());
        }
    }
    names
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stub derive does not support generic type `{name}`"
            ));
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let arity = split_commas(g.stream().into_iter().collect())
                        .into_iter()
                        .filter(|t| !t.is_empty())
                        .count();
                    Fields::Tuple(arity)
                }
                _ => Fields::Unit,
            };
            Ok(Input::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.clone(),
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            let mut variants = Vec::new();
            for item in split_commas(body.stream().into_iter().collect()) {
                let j = skip_attrs(&item, 0);
                let vname = match item.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    None => continue,
                    other => return Err(format!("expected variant name, got {other:?}")),
                };
                let fields = match item.get(j + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = split_commas(g.stream().into_iter().collect())
                            .into_iter()
                            .filter(|t| !t.is_empty())
                            .count();
                        Fields::Tuple(arity)
                    }
                    _ => Fields::Unit,
                };
                variants.push(Variant {
                    name: vname,
                    fields,
                });
            }
            Ok(Input::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

fn named_to_value(fields: &[String], access_prefix: &str) -> String {
    let mut s = String::from("{ let mut __m = ::serde::value::Map::new();\n");
    for f in fields {
        s.push_str(&format!(
            "__m.insert({f:?}.to_string(), ::serde::Serialize::to_value({access_prefix}{f}));\n"
        ));
    }
    s.push_str("::serde::value::Value::Object(__m) }");
    s
}

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::value::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(fs) => named_to_value(fs, "&self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n}}"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::value::Value::String({vn:?}.to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__x0) => ::serde::value::Value::tagged({vn:?}, \
                         ::serde::Serialize::to_value(__x0)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::value::Value::tagged({vn:?}, \
                             ::serde::value::Value::Array(vec![{}])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let inner = named_to_value(fs, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::value::Value::tagged({vn:?}, {inner}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{ match self {{\n{arms}}} }}\n}}"
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

fn named_from_value(type_path: &str, fields: &[String], src: &str) -> String {
    let mut s = format!(
        "{{ let __m = {src}.as_object().ok_or_else(|| \
         ::serde::DeError::expected(\"object\", {type_path:?}))?;\n\
         Ok({type_path} {{\n"
    );
    for f in fields {
        s.push_str(&format!("{f}: ::serde::__field(__m, {f:?})?,\n"));
    }
    s.push_str("}) }");
    s
}

fn tuple_from_value(type_path: &str, n: usize, src: &str) -> String {
    if n == 1 {
        return format!("Ok({type_path}(::serde::Deserialize::from_value({src})?))");
    }
    let mut s = format!(
        "{{ let __a = {src}.as_array().ok_or_else(|| \
         ::serde::DeError::expected(\"array\", {type_path:?}))?;\n\
         if __a.len() != {n} {{ return Err(::serde::DeError::custom(format!(\
         \"expected {n} elements for {type_path}, got {{}}\", __a.len()))); }}\n\
         Ok({type_path}("
    );
    for i in 0..n {
        s.push_str(&format!("::serde::Deserialize::from_value(&__a[{i}])?, "));
    }
    s.push_str(")) }");
    s
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("{{ let _ = v; Ok({name}) }}"),
                Fields::Tuple(n) => tuple_from_value(name, *n, "v"),
                Fields::Named(fs) => named_from_value(name, fs, "v"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::value::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n}}"
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                let path = format!("{name}::{vn}");
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => Ok({path}),\n"));
                        // Also accept {"Variant": null} for symmetry.
                        tagged_arms.push_str(&format!("{vn:?} => Ok({path}),\n"));
                    }
                    Fields::Tuple(n) => {
                        let body = tuple_from_value(&path, *n, "__inner");
                        tagged_arms.push_str(&format!("{vn:?} => {body},\n"));
                    }
                    Fields::Named(fs) => {
                        let body = named_from_value(&path, fs, "__inner");
                        tagged_arms.push_str(&format!("{vn:?} => {body},\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::value::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::value::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => Err(::serde::DeError::custom(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::value::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = __m.iter().next().expect(\"len 1\");\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => Err(::serde::DeError::custom(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 _ => Err(::serde::DeError::expected(\"string or single-key object\", {name:?})),\n\
                 }}\n}}\n}}"
            )
        }
    }
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde stub codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde stub codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}
